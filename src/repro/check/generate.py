"""Random structured-program and random-partition generation.

This module is the shared grammar behind both the property tests and the
differential fuzzer (``python -m repro fuzz``): programs are built from
nested sequences / if-else diamonds / bounded counted loops over a small
register pool and a masked-index memory object, so every generated program
terminates and never faults — yet exercises multi-exit loops, replicated
branches, and arbitrary cross-thread dependence shapes through MTCG, COCO,
and the simulators.

Two front ends sample the grammar:

* :func:`random_sketch` / :func:`random_partition` — a pure
  ``random.Random``-driven sampler, dependency-free, used by the fuzzing
  driver (:mod:`repro.check.fuzz`);
* :mod:`repro.check.strategies` — hypothesis strategies over the same
  sketch grammar, used by the property tests (imports ``hypothesis`` and
  is therefore kept out of this module).

A sketch is a list of *statements*, each a tuple:

=============  ==========================================================
``("alu", op, dest, a, b)``      ALU op over the register pool (0..5)
``("movi", dest, value)``        load an immediate
``("load", dest, addr)``         masked load from the memory object
``("store", value, addr)``       masked store to the memory object
``("breakif", cond)``            early exit of the innermost loop
``("if", cond, then, else)``     if-else diamond (nested statement lists)
``("loop", trips, body)``        bounded counted loop
=============  ==========================================================

Sketches are JSON-serializable (:func:`sketch_to_json` /
:func:`sketch_from_json`), which is how the fuzzer persists minimized
reproducers into its corpus.
"""

from __future__ import annotations

import json
import random
from typing import Iterator, List, Optional

from ..ir import Function, FunctionBuilder, Opcode
from ..partition import Partition

MEM_SIZE = 32
SAFE_BINOPS = ["add", "sub", "mul", "and", "or", "xor", "min", "max",
               "cmpeq", "cmpne", "cmplt", "cmple", "cmpgt", "cmpge"]


class ProgramSketch:
    """A recursive program description that can be rendered to IR."""

    def __init__(self, statements):
        self.statements = statements

    def __repr__(self) -> str:  # pragma: no cover
        return "<ProgramSketch %d top-level statements>" % \
            len(self.statements)


def render_program(sketch: ProgramSketch) -> Function:
    """Render a sketch to a verified IR function."""
    builder = FunctionBuilder(
        "random_program", params=["r_in0", "r_in1", "p_m"],
        live_outs=["r0", "r1", "r2"])
    builder.mem("m", MEM_SIZE, ptr="p_m")
    counter = [0]

    def fresh(prefix: str) -> str:
        counter[0] += 1
        return "%s%d" % (prefix, counter[0])

    builder.label("entry")
    # Initialize the register pool from the inputs.
    builder.mov("r0", "r_in0")
    builder.mov("r1", "r_in1")
    builder.add("r2", "r_in0", "r_in1")
    builder.sub("r3", "r_in0", "r_in1")
    builder.movi("r4", 7)
    builder.movi("r5", -3)

    def reg(index: int) -> str:
        return "r%d" % index

    def emit_statements(statements, next_label: str,
                        break_label: str = None) -> None:
        """Emit statements into the currently open block; finally jump to
        ``next_label``.  Opens/closes blocks as needed for control flow.
        ``break_label`` is the innermost loop's exit (for "breakif")."""
        for statement in statements:
            kind = statement[0]
            if kind == "breakif":
                _, cond = statement
                if break_label is None:
                    continue  # not inside a loop: no-op
                cond_reg = fresh("r_bc")
                cont_label = fresh("cont")
                builder.cmpgt(cond_reg, reg(cond), 15)
                builder.br(cond_reg, break_label, cont_label)
                builder.label(cont_label)
                continue
            if kind == "alu":
                _, op, dest, a, b = statement
                builder.alu(op, reg(dest), reg(a), reg(b))
            elif kind == "movi":
                _, dest, value = statement
                builder.movi(reg(dest), value)
            elif kind == "load":
                _, dest, addr = statement
                index = fresh("r_ix")
                address = fresh("r_ad")
                builder.and_(index, reg(addr), MEM_SIZE - 1)
                builder.abs(index, index)
                builder.add(address, "p_m", index)
                builder.load(reg(dest), address)
            elif kind == "store":
                _, value, addr = statement
                index = fresh("r_ix")
                address = fresh("r_ad")
                builder.and_(index, reg(addr), MEM_SIZE - 1)
                builder.abs(index, index)
                builder.add(address, "p_m", index)
                builder.store(address, reg(value))
            elif kind == "if":
                _, cond, then_statements, else_statements = statement
                cond_reg = fresh("r_c")
                then_label = fresh("then")
                else_label = fresh("else")
                join_label = fresh("join")
                builder.cmpgt(cond_reg, reg(cond), 0)
                builder.br(cond_reg, then_label, else_label)
                builder.label(then_label)
                emit_statements(then_statements, join_label,
                                break_label)
                builder.label(else_label)
                emit_statements(else_statements, join_label,
                                break_label)
                builder.label(join_label)
            elif kind == "loop":
                _, trips, body = statement
                i_reg = fresh("r_i")
                cond_reg = fresh("r_c")
                header = fresh("head")
                body_label = fresh("body")
                done_label = fresh("done")
                builder.movi(i_reg, trips)
                builder.jmp(header)
                builder.label(header)
                builder.cmpgt(cond_reg, i_reg, 0)
                builder.br(cond_reg, body_label, done_label)
                builder.label(body_label)
                builder.sub(i_reg, i_reg, 1)
                emit_statements(body, header,
                                break_label=done_label)
                builder.label(done_label)
            else:  # pragma: no cover
                raise AssertionError("unknown statement %r" % (statement,))
        builder.jmp(next_label)

    final = "final"
    emit_statements(sketch.statements, final)
    builder.label(final)
    builder.exit()
    return builder.build()


# ---------------------------------------------------------------------------
# Pure-random sampling (the fuzzer's front end).

def random_leaf(rng: random.Random):
    kind = rng.randrange(5)
    if kind == 0:
        return ("alu", rng.choice(SAFE_BINOPS), rng.randrange(6),
                rng.randrange(6), rng.randrange(6))
    if kind == 1:
        return ("movi", rng.randrange(6), rng.randint(-20, 20))
    if kind == 2:
        return ("load", rng.randrange(6), rng.randrange(6))
    if kind == 3:
        return ("store", rng.randrange(6), rng.randrange(6))
    return ("breakif", rng.randrange(6))


def _random_statements(rng: random.Random, depth: int) -> List:
    statements = []
    for _ in range(rng.randint(1, 4)):
        # Compound statements with probability 1/3 while depth remains.
        if depth > 0 and rng.randrange(3) == 0:
            if rng.randrange(2) == 0:
                statements.append(("if", rng.randrange(6),
                                   _random_statements(rng, depth - 1),
                                   _random_statements(rng, depth - 1)))
            else:
                statements.append(("loop", rng.randint(1, 4),
                                   _random_statements(rng, depth - 1)))
        else:
            statements.append(random_leaf(rng))
    return statements


def random_sketch(rng: random.Random, depth: int = 2) -> ProgramSketch:
    """Sample one program sketch from the grammar."""
    return ProgramSketch(_random_statements(rng, depth))


def random_args(rng: random.Random) -> dict:
    return {"r_in0": rng.randint(-50, 50), "r_in1": rng.randint(-50, 50)}


def random_partition(rng: random.Random, function: Function,
                     max_threads: int = 3,
                     n_threads: Optional[int] = None) -> Partition:
    """A uniformly random partition (exit pinned to thread 0, everything
    else arbitrary) — the adversarial input the MTCG theorem quantifies
    over."""
    if n_threads is None:
        n_threads = rng.randint(2, max_threads)
    assignment = {}
    for instruction in function.instructions():
        if instruction.op is Opcode.EXIT:
            assignment[instruction.iid] = 0
        else:
            assignment[instruction.iid] = rng.randrange(n_threads)
    return Partition(function, n_threads, assignment)


# ---------------------------------------------------------------------------
# Sketch persistence (for the fuzz corpus) and shrinking.

def sketch_to_json(sketch: ProgramSketch) -> str:
    return json.dumps(sketch.statements)


def sketch_from_json(text: str) -> ProgramSketch:
    def tuplify(node):
        if isinstance(node, list):
            # Statement lists stay lists; statements become tuples.  A
            # statement always starts with a kind string.
            if node and isinstance(node[0], str):
                return tuple(tuplify(child) for child in node)
            return [tuplify(child) for child in node]
        return node

    return ProgramSketch(tuplify(json.loads(text)))


def sketch_size(sketch: ProgramSketch) -> int:
    """Number of statements, at every nesting level."""
    def count(statements) -> int:
        total = 0
        for statement in statements:
            total += 1
            if statement[0] == "if":
                total += count(statement[2]) + count(statement[3])
            elif statement[0] == "loop":
                total += count(statement[2])
        return total

    return count(sketch.statements)


def shrink_candidates(sketch: ProgramSketch) -> Iterator[ProgramSketch]:
    """All sketches one greedy deletion step smaller: every single
    statement deleted (at any nesting depth), and every compound
    statement replaced by its body (hoisting).  Ordered so the earliest
    candidates remove the most."""

    def variants(statements) -> Iterator[List]:
        # Replace a compound by its body (big reduction first).
        for index, statement in enumerate(statements):
            if statement[0] == "if":
                yield (statements[:index] + list(statement[2])
                       + list(statement[3]) + statements[index + 1:])
            elif statement[0] == "loop":
                yield (statements[:index] + list(statement[2])
                       + statements[index + 1:])
        # Delete one statement outright.
        for index in range(len(statements)):
            yield statements[:index] + statements[index + 1:]
        # Recurse into compound bodies.
        for index, statement in enumerate(statements):
            if statement[0] == "if":
                for smaller in variants(list(statement[2])):
                    yield (statements[:index]
                           + [("if", statement[1], smaller,
                               list(statement[3]))]
                           + statements[index + 1:])
                for smaller in variants(list(statement[3])):
                    yield (statements[:index]
                           + [("if", statement[1], list(statement[2]),
                               smaller)]
                           + statements[index + 1:])
            elif statement[0] == "loop":
                for smaller in variants(list(statement[2])):
                    yield (statements[:index]
                           + [("loop", statement[1], smaller)]
                           + statements[index + 1:])

    for candidate in variants(list(sketch.statements)):
        yield ProgramSketch(candidate)
