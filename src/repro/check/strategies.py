"""Hypothesis strategies over the :mod:`repro.check.generate` grammar.

Kept separate from :mod:`repro.check.generate` so the shipped package —
including the fuzzer — never imports ``hypothesis``; only the property
tests pull this module in.
"""

from __future__ import annotations

from typing import List

from hypothesis import strategies as st

from ..ir import Function, Opcode
from ..partition import Partition
from .generate import SAFE_BINOPS, ProgramSketch

_leaf_stmt = st.one_of(
    st.tuples(st.just("alu"), st.sampled_from(SAFE_BINOPS),
              st.integers(0, 5), st.integers(0, 5), st.integers(0, 5)),
    st.tuples(st.just("movi"), st.integers(0, 5), st.integers(-20, 20)),
    st.tuples(st.just("load"), st.integers(0, 5), st.integers(0, 5)),
    st.tuples(st.just("store"), st.integers(0, 5), st.integers(0, 5)),
    # Early loop exit (a no-op when not inside a loop): exercises
    # multi-exit loops through MTCG/COCO/outlining paths.
    st.tuples(st.just("breakif"), st.integers(0, 5)),
)


def _stmts(depth: int):
    if depth <= 0:
        return st.lists(_leaf_stmt, min_size=1, max_size=4)
    inner = _stmts(depth - 1)
    compound = st.one_of(
        _leaf_stmt,
        st.tuples(st.just("if"), st.integers(0, 5), inner, inner),
        st.tuples(st.just("loop"), st.integers(1, 4), inner),
    )
    return st.lists(compound, min_size=1, max_size=4)


program_sketches = st.builds(ProgramSketch, _stmts(2))


def random_partition_strategy(function: Function, max_threads: int = 3):
    """Strategy of random partitions for a fixed function (exit pinned to
    thread 0, everything else arbitrary)."""
    iids = [instruction.iid for instruction in function.instructions()
            if instruction.op is not Opcode.EXIT]
    exits = [instruction.iid for instruction in function.instructions()
             if instruction.op is Opcode.EXIT]

    def build(n_threads: int, choices: List[int]) -> Partition:
        assignment = {iid: choices[index] % n_threads
                      for index, iid in enumerate(iids)}
        for iid in exits:
            assignment[iid] = 0
        return Partition(function, n_threads, assignment)

    return st.builds(
        build,
        st.integers(2, max_threads),
        st.lists(st.integers(0, max_threads - 1),
                 min_size=len(iids), max_size=len(iids)))
