"""Differential backend-equivalence checker.

The fast simulator backend (:mod:`repro.machine.fast_timing`) promises
**bit-identical** results to the reference (:mod:`repro.machine.timing`)
— not "close", identical: every cycle count, every per-core stall
attribution, every queue timestamp, every live-out, down to the int/
float type of each number (the reference mixes both deliberately, and a
``1635`` silently becoming ``1635.0`` would change downstream repr-based
fingerprints).  This module is the executable form of that contract:

* :func:`snapshot_result` flattens a
  :class:`~repro.machine.timing.TimedResult` into a JSON-able tree
  whose leaves are ``[type_name, repr]`` pairs — equality of snapshots
  is bit-equality of results;
* :func:`diff_snapshots` returns path-labelled differences
  (``cycles: ('int', '1635') != ('float', '1635.0')``);
* :func:`run_workload_case` / :func:`run_fuzz_case` execute one
  comparison — a registry workload under a (technique, topology,
  trace) configuration, or a seeded random program from
  :mod:`repro.check.generate` — on **both** backends and report the
  divergences plus per-backend host seconds;
* :func:`run_differential` sweeps the whole grid (all workloads x
  topology presets x partitioners x trace on/off, plus N fuzz seeds)
  and aggregates a machine-readable report —
  ``tools/check_backend_equivalence.py`` turns it into the CI
  ``backend-equivalence`` job and uploads the report on failure.

Traced cases lock down the delegation contract (a tracer forces the
reference implementation, so event streams are trivially identical —
but a regression that breaks the delegation would surface here first).
"""

from __future__ import annotations

import random
import time
from typing import Callable, Dict, Iterable, List, Optional, Sequence

from ..machine.backend import simulate_program_fn, simulate_single_fn
from ..mtcg.codegen import generate
from ..pipeline.core import parallelize
from ..pipeline.stages import normalize
from ..workloads import all_workloads, get_workload
from .generate import random_args, random_partition, random_sketch, \
    render_program

ProgressFn = Optional[Callable[[str], None]]

#: The default comparison grid (mirrors tests/test_backend_equivalence).
DEFAULT_TOPOLOGIES = (None, "paper-dual", "quad-2x2")
DEFAULT_TECHNIQUES = ("gremio", "dswp")

#: Cores per preset: quad-2x2 fits 4 threads, the rest 2.
_TOPOLOGY_THREADS = {None: 2, "paper-dual": 2, "quad-2x2": 4}


def _typed(value):
    """JSON-able, type-preserving view: containers recurse, every leaf
    becomes ``[type_name, repr]`` so ``1`` never equals ``1.0``."""
    if isinstance(value, dict):
        return {str(key): _typed(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_typed(item) for item in value]
    return [type(value).__name__, repr(value)]


def snapshot_result(result) -> Dict[str, object]:
    """Every observable of a TimedResult, typed (see module docstring)."""
    queues = None
    if result.queues is not None:
        q = result.queues
        queues = {
            "push_counts": list(q.push_counts),
            "pop_counts": list(q.pop_counts),
            "pop_times": [list(times) for times in q.pop_times],
            "timestamps": [list(times) for times in q.timestamps],
            "staged_push_time": q.staged_push_time,
            "last_popped_time": q.last_popped_time,
            "total_pushes": q.total_pushes,
            "pushes_per_queue": list(q.pushes_per_queue),
            "max_occupancy": q.max_occupancy,
        }
    return _typed({
        "cycles": result.cycles,
        "core_finish": list(result.core_finish),
        "per_thread_instructions": list(result.per_thread_instructions),
        "per_thread_communication":
            list(result.per_thread_communication),
        "opcode_counts": dict(sorted(
            (opcode.value, count)
            for opcode, count in result.opcode_counts.items())),
        "live_outs": result.live_outs,
        "memory": list(result.memory.snapshot()),
        "cache_stats": dict(result.cache_stats),
        "comm_stats": dict(result.comm_stats),
        "queues": queues,
    })


def snapshot_trace(collector) -> Dict[str, object]:
    """The observable surface of a TraceCollector: the full event
    stream plus the aggregate tables the reports are built from."""
    return _typed({
        "events": [event.as_dict() for event in collector.events],
        "dropped": collector.events.dropped,
        "core_table": collector.core_table(),
        "class_table": collector.class_table(),
        "stall_totals": collector.stall_totals(),
        "total_cycles": collector.total_cycles,
    })


def diff_snapshots(reference, fast, path: str = "",
                   limit: int = 50) -> List[str]:
    """Path-labelled differences between two snapshots (both sides
    produced by :func:`snapshot_result` / :func:`snapshot_trace`)."""
    diffs: List[str] = []
    _diff(reference, fast, path, diffs)
    return diffs[:limit]


def _diff(a, b, path: str, out: List[str]) -> None:
    if isinstance(a, dict) and isinstance(b, dict):
        for key in sorted(set(a) | set(b), key=str):
            _diff(a.get(key), b.get(key),
                  "%s.%s" % (path, key) if path else str(key), out)
        return
    if isinstance(a, list) and isinstance(b, list) \
            and not _is_leaf(a) and not _is_leaf(b):
        if len(a) != len(b):
            out.append("%s: length %d != %d" % (path, len(a), len(b)))
            return
        for index, (left, right) in enumerate(zip(a, b)):
            _diff(left, right, "%s[%d]" % (path, index), out)
        return
    if a != b:
        out.append("%s: %r != %r" % (path, a, b))


def _is_leaf(value) -> bool:
    return (isinstance(value, list) and len(value) == 2
            and all(isinstance(item, str) for item in value))


class CaseResult:
    """One executed comparison: a label, the divergences (empty =
    bit-identical), and the per-backend host seconds."""

    def __init__(self, label: str, divergences: List[str],
                 reference_seconds: float, fast_seconds: float):
        self.label = label
        self.divergences = divergences
        self.reference_seconds = reference_seconds
        self.fast_seconds = fast_seconds

    @property
    def ok(self) -> bool:
        return not self.divergences

    def as_dict(self) -> Dict[str, object]:
        return {"label": self.label, "ok": self.ok,
                "divergences": list(self.divergences),
                "reference_seconds": round(self.reference_seconds, 6),
                "fast_seconds": round(self.fast_seconds, 6)}

    def __repr__(self) -> str:  # pragma: no cover
        return "<CaseResult %s: %s>" % (
            self.label, "ok" if self.ok else
            "%d divergences" % len(self.divergences))


def _capture(run, snapshot) -> Dict[str, object]:
    """Run one backend; an exception is an observable too — both
    backends must raise the same type with the same message (fuzz
    programs trap by design: division by zero, undefined registers)."""
    try:
        return {"result": snapshot(run())}
    except Exception as error:
        return {"error": _typed([type(error).__name__, str(error)])}


def _compare(label: str, run_reference, run_fast,
             snapshot=snapshot_result) -> CaseResult:
    started = time.perf_counter()
    reference = _capture(run_reference, snapshot)
    mid = time.perf_counter()
    fast = _capture(run_fast, snapshot)
    done = time.perf_counter()
    divergences = diff_snapshots(reference, fast)
    return CaseResult(label, divergences, mid - started, done - mid)


def run_workload_case(workload_name: str,
                      technique: Optional[str] = None,
                      topology: Optional[str] = None,
                      n_threads: int = 2,
                      scale: str = "train",
                      trace: bool = False) -> CaseResult:
    """Compare both backends on one registry workload.

    ``technique=None`` runs the single-threaded simulator; otherwise the
    workload is parallelized once (the build side is backend-agnostic)
    and the resulting MT program timed by both backends.  ``trace=True``
    attaches an independent TraceCollector to each backend run and
    compares the event streams too.
    """
    workload = get_workload(workload_name)
    inputs = workload.make_inputs(scale)
    label = "%s/%s/%s/%dT%s" % (workload_name, technique or "st",
                                topology or "flat", n_threads,
                                "/trace" if trace else "")
    if technique is None:
        def run(backend):
            def go():
                return simulate_single_fn(backend)(
                    workload.build(), inputs.args, inputs.memory)
            return go
        return _compare(label, run("reference"), run("fast"))

    train = workload.make_inputs("train")
    built = parallelize(workload.build(), technique=technique,
                        n_threads=n_threads, profile_args=train.args,
                        profile_memory=train.memory, cache=False,
                        topology=topology)
    if trace:
        from ..trace import TraceCollector

        def run_traced(backend):
            def go():
                collector = TraceCollector()
                simulate_program_fn(backend)(
                    built.program, inputs.args, inputs.memory,
                    config=built.config, tracer=collector)
                return collector
            return go
        return _compare(label, run_traced("reference"),
                        run_traced("fast"), snapshot=snapshot_trace)

    def run(backend):
        def go():
            return simulate_program_fn(backend)(
                built.program, inputs.args, inputs.memory,
                config=built.config)
        return go
    return _compare(label, run("reference"), run("fast"))


def run_fuzz_case(seed: int, depth: int = 2,
                  max_threads: int = 3) -> CaseResult:
    """Compare both backends on one seeded random program: the
    single-threaded run, plus an MTCG program built from a random
    partition of the same function (the adversarial shapes the
    workload registry never produces)."""
    rng = random.Random(seed)
    sketch = random_sketch(rng, depth=depth)
    args = random_args(rng)
    n_threads = rng.randint(2, max_threads)

    function = render_program(sketch)
    normalize(function)

    def run_st(backend):
        def go():
            return simulate_single_fn(backend)(function, args)
        return go
    st = _compare("fuzz-%d/st" % seed, run_st("reference"),
                  run_st("fast"))

    from ..analysis.pdg import build_pdg
    pdg = build_pdg(function)
    partition = random_partition(random.Random(seed * 7919 + 13),
                                 function, n_threads=n_threads)
    program = generate(function, pdg, partition)

    def run_mt(backend):
        def go():
            return simulate_program_fn(backend)(program, args)
        return go
    mt = _compare("fuzz-%d/random-%dT" % (seed, n_threads),
                  run_mt("reference"), run_mt("fast"))

    return CaseResult(
        "fuzz-%d" % seed, st.divergences + mt.divergences,
        st.reference_seconds + mt.reference_seconds,
        st.fast_seconds + mt.fast_seconds)


class DifferentialReport:
    """Aggregate of one equivalence sweep."""

    def __init__(self):
        self.cases: List[CaseResult] = []

    def add(self, case: CaseResult) -> None:
        self.cases.append(case)

    @property
    def ok(self) -> bool:
        return all(case.ok for case in self.cases)

    @property
    def failures(self) -> List[CaseResult]:
        return [case for case in self.cases if not case.ok]

    @property
    def reference_seconds(self) -> float:
        return sum(case.reference_seconds for case in self.cases)

    @property
    def fast_seconds(self) -> float:
        return sum(case.fast_seconds for case in self.cases)

    def speedup(self) -> float:
        return self.reference_seconds / max(self.fast_seconds, 1e-9)

    def summary(self) -> str:
        return ("backend-equivalence: %d cases, %d divergent; "
                "reference %.2fs, fast %.2fs (%.2fx)"
                % (len(self.cases), len(self.failures),
                   self.reference_seconds, self.fast_seconds,
                   self.speedup()))

    def as_dict(self) -> Dict[str, object]:
        return {"schema": "repro.check.backend-equivalence/v1",
                "ok": self.ok,
                "cases": [case.as_dict() for case in self.cases],
                "reference_seconds": round(self.reference_seconds, 4),
                "fast_seconds": round(self.fast_seconds, 4)}


def run_differential(workloads: Optional[Iterable[str]] = None,
                     topologies: Sequence[Optional[str]]
                     = DEFAULT_TOPOLOGIES,
                     techniques: Sequence[str] = DEFAULT_TECHNIQUES,
                     scale: str = "train",
                     trace_modes: Sequence[bool] = (False,),
                     fuzz_seeds: Iterable[int] = (),
                     progress: ProgressFn = None) -> DifferentialReport:
    """Sweep the full equivalence grid and aggregate the report.

    Every (workload x topology x technique x trace) cell plus the
    single-threaded run per workload, then one :func:`run_fuzz_case`
    per seed.  Any divergence makes ``report.ok`` false; nothing short-
    circuits, so the report always carries the complete failure list.
    """
    report = DifferentialReport()
    names = list(workloads) if workloads is not None \
        else [workload.name for workload in all_workloads()]
    for name in names:
        report.add(run_workload_case(name, scale=scale))
        for topology in topologies:
            n_threads = _TOPOLOGY_THREADS.get(topology, 2)
            for technique in techniques:
                for trace in trace_modes:
                    case = run_workload_case(
                        name, technique=technique, topology=topology,
                        n_threads=n_threads, scale=scale, trace=trace)
                    report.add(case)
                    if progress:
                        progress("%s: %s" % (case.label,
                                             "ok" if case.ok else "FAIL"))
    for seed in fuzz_seeds:
        case = run_fuzz_case(seed)
        report.add(case)
        if progress:
            progress("%s: %s" % (case.label,
                                 "ok" if case.ok else "FAIL"))
    return report
