"""Static MT validators: post-MTCG checks of the invariants that make a
multi-threaded program observationally equivalent to its single-threaded
original and deadlock-free.

These are *static* checks over the generated :class:`MTProgram` — no
execution — so they can run inside the pipeline's ``check`` stage on
every sweep cell at negligible cost.  Four rule families:

* **channel balance** — for every channel, the produces materialized in
  the source thread and the consumes materialized in the target thread
  sit in the *same original blocks with the same multiplicity*.  Both
  sides of a channel are emitted at identical program points under
  identical control conditions (the MTCG pairing invariant), so any
  imbalance (a dropped consume, an extra produce) is a hard error that
  would starve or wedge a queue at run time.
* **queue-allocation conflict freedom** — channels sharing one physical
  queue must connect the same (producer, consumer) thread pair and have
  strictly ordered point regions (the rule in
  :mod:`repro.mtcg.queues`); anything weaker lets one channel steal
  another's pending value from the shared FIFO.
* **cross-thread register isolation** — register files are private:
  every thread function must define (param / local def / consume) every
  register it reads on every path; live-outs may be declared only on
  the exit thread; a channel's communicated register must be defined in
  its source thread.
* **deadlock freedom (wait-for graph)** — a conservative cycle check
  over the communication flowgraph at block granularity: within each
  original block, a comm op waits for its block-local predecessors
  (blocking queue semantics), and a consume waits for its paired
  produce.  Legal MTCG output orders both sides of every point
  identically, making this graph acyclic; crossed produce/consume
  orders show up as a cycle naming the offending channels.  (The check
  is block-local: cross-block cycles are left to the dynamic oracle.)

:func:`validate_program` runs all families and returns a
:class:`ValidationReport` with per-rule counters for telemetry.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..ir.instructions import Opcode
from ..ir.verify import VerificationError, verify_function
from ..mtcg.channels import CommChannel
from ..mtcg.program import MTProgram
from ..mtcg.queues import _block_scc_order, _may_share

PRODUCE_OPS = frozenset({Opcode.PRODUCE, Opcode.PRODUCE_SYNC})
CONSUME_OPS = frozenset({Opcode.CONSUME, Opcode.CONSUME_SYNC})


class Violation:
    """One broken invariant."""

    __slots__ = ("rule", "message", "queue", "channel", "thread")

    def __init__(self, rule: str, message: str,
                 queue: Optional[int] = None,
                 channel: Optional[CommChannel] = None,
                 thread: Optional[int] = None):
        self.rule = rule
        self.message = message
        self.queue = queue
        self.channel = channel
        self.thread = thread

    def __repr__(self) -> str:  # pragma: no cover
        return "<Violation %s: %s>" % (self.rule, self.message)


class ValidationReport:
    """Outcome of the static validators on one MT program."""

    def __init__(self) -> None:
        self.violations: List[Violation] = []
        self.counters: Dict[str, int] = {}

    @property
    def ok(self) -> bool:
        return not self.violations

    def add(self, rule: str, message: str, **kw) -> None:
        self.violations.append(Violation(rule, message, **kw))

    def count(self, name: str, amount: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + amount

    def rules_violated(self) -> List[str]:
        return sorted({violation.rule for violation in self.violations})

    def describe(self) -> str:
        if self.ok:
            return "all MT validators passed"
        lines = ["%d MT validator violation(s):" % len(self.violations)]
        for violation in self.violations:
            lines.append("  [%s] %s" % (violation.rule, violation.message))
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover
        return "<ValidationReport %s>" % (
            "ok" if self.ok else self.rules_violated())


class MTValidationError(Exception):
    """Raised by the pipeline's check stage on validator failure."""

    def __init__(self, report: ValidationReport, context: str = ""):
        message = report.describe()
        if context:
            message = "%s: %s" % (context, message)
        super().__init__(message)
        self.report = report


# ---------------------------------------------------------------------------
# Shared scans.

CommOp = Tuple[str, int, object]  # (block label, position, instruction)


def _comm_ops(program: MTProgram) -> List[List[CommOp]]:
    """Per thread: every communication instruction with its block and
    block-local position, in program order."""
    result: List[List[CommOp]] = []
    for thread_function in program.threads:
        ops: List[CommOp] = []
        for block in thread_function.blocks:
            for position, instruction in enumerate(block.instructions):
                if instruction.op in PRODUCE_OPS \
                        or instruction.op in CONSUME_OPS:
                    ops.append((block.label, position, instruction))
        result.append(ops)
    return result


def _channels_by_queue(program: MTProgram
                       ) -> Dict[int, List[CommChannel]]:
    grouped: Dict[int, List[CommChannel]] = {}
    for channel in program.channels:
        grouped.setdefault(channel.queue, []).append(channel)
    return grouped


# ---------------------------------------------------------------------------
# Rule families.

def check_channel_balance(program: MTProgram, report: ValidationReport,
                          comm_ops: Optional[List[List[CommOp]]] = None
                          ) -> None:
    """Every produce on a queue is matched, block-for-block, by a consume
    in the destination thread (and ops appear only in the two endpoint
    threads)."""
    if comm_ops is None:
        comm_ops = _comm_ops(program)
    grouped = _channels_by_queue(program)

    # queue -> thread -> block -> counts
    produced: Dict[int, Dict[int, Dict[str, int]]] = {}
    consumed: Dict[int, Dict[int, Dict[str, int]]] = {}
    for thread, ops in enumerate(comm_ops):
        for label, _, instruction in ops:
            target = (produced if instruction.op in PRODUCE_OPS
                      else consumed)
            per_thread = target.setdefault(instruction.queue, {})
            per_block = per_thread.setdefault(thread, {})
            per_block[label] = per_block.get(label, 0) + 1

    for queue in sorted(set(produced) | set(consumed)):
        channels = grouped.get(queue)
        if not channels:
            report.add("channel-balance",
                       "communication on queue %d which no channel owns"
                       % queue, queue=queue)
            continue
        report.count("balance_queues_checked")
        sources = {channel.source_thread for channel in channels}
        targets = {channel.target_thread for channel in channels}
        for thread, blocks in produced.get(queue, {}).items():
            if thread not in sources:
                report.add("channel-balance",
                           "thread %d produces on queue %d it does not "
                           "source" % (thread, queue), queue=queue,
                           thread=thread)
        for thread, blocks in consumed.get(queue, {}).items():
            if thread not in targets:
                report.add("channel-balance",
                           "thread %d consumes from queue %d it does not "
                           "target" % (thread, queue), queue=queue,
                           thread=thread)
        produce_blocks: Dict[str, int] = {}
        for thread in sources:
            for label, count in produced.get(queue, {}).get(
                    thread, {}).items():
                produce_blocks[label] = produce_blocks.get(label, 0) + count
        consume_blocks: Dict[str, int] = {}
        for thread in targets:
            for label, count in consumed.get(queue, {}).get(
                    thread, {}).items():
                consume_blocks[label] = consume_blocks.get(label, 0) + count
        for label in sorted(set(produce_blocks) | set(consume_blocks)):
            n_produce = produce_blocks.get(label, 0)
            n_consume = consume_blocks.get(label, 0)
            report.count("balance_points_checked")
            if n_produce != n_consume:
                report.add(
                    "channel-balance",
                    "queue %d unbalanced in block %r: %d produce(s) in "
                    "thread(s) %s vs %d consume(s) in thread(s) %s"
                    % (queue, label, n_produce, sorted(sources),
                       n_consume, sorted(targets)),
                    queue=queue, channel=channels[0])

    # A channel whose queue carries no communication at all is suspicious
    # only if it declared insertion points; MTCG never emits such output.
    for channel in program.channels:
        if channel.points and channel.queue not in produced \
                and channel.queue not in consumed:
            report.add("channel-balance",
                       "channel %r has points but no materialized "
                       "communication" % (channel,),
                       queue=channel.queue, channel=channel)


def check_queue_conflicts(program: MTProgram,
                          report: ValidationReport) -> None:
    """Channels sharing a physical queue must be provably safe to share
    (same endpoints, strictly ordered point regions)."""
    grouped = _channels_by_queue(program)
    order = None
    for queue, channels in sorted(grouped.items()):
        report.count("queues_checked")
        if queue < 0:
            report.add("queue-conflict",
                       "channel %r was never assigned a queue"
                       % (channels[0],), queue=queue,
                       channel=channels[0])
            continue
        if len(channels) == 1:
            continue
        report.count("queues_shared")
        endpoints = {(channel.source_thread, channel.target_thread)
                     for channel in channels}
        if len(endpoints) > 1:
            report.add("queue-conflict",
                       "queue %d shared by channels with different "
                       "endpoints %s" % (queue, sorted(endpoints)),
                       queue=queue, channel=channels[0])
            continue
        if order is None:
            order = _block_scc_order(program.original)
        for i in range(len(channels)):
            for j in range(i + 1, len(channels)):
                if not _may_share(channels[i], channels[j], order):
                    report.add(
                        "queue-conflict",
                        "queue %d shared by channels with interleaving "
                        "point regions: %r / %r"
                        % (queue, channels[i], channels[j]),
                        queue=queue, channel=channels[i])


def check_register_isolation(program: MTProgram,
                             report: ValidationReport) -> None:
    """Register files are thread-private; values cross threads only
    through consumes."""
    for index, thread_function in enumerate(program.threads):
        report.count("threads_verified")
        if index != program.exit_thread and thread_function.live_outs:
            report.add("register-isolation",
                       "thread %d declares live-outs %r but thread %d "
                       "owns the exit" % (index,
                                          list(thread_function.live_outs),
                                          program.exit_thread),
                       thread=index)
        try:
            verify_function(thread_function, allow_comm=True)
        except VerificationError as error:
            report.add("register-isolation",
                       "thread %d fails IR verification: %s"
                       % (index, error), thread=index)

    # The communicated register must exist in the source thread.
    for channel in program.channels:
        if channel.register is None:
            continue
        report.count("channel_registers_checked")
        source = program.threads[channel.source_thread]
        defined = set(source.params)
        for instruction in source.instructions():
            defined.update(instruction.defined_registers())
        if channel.register not in defined:
            report.add("register-isolation",
                       "channel %r communicates register %r which its "
                       "source thread %d never defines"
                       % (channel, channel.register,
                          channel.source_thread),
                       queue=channel.queue, channel=channel)


def check_deadlock_freedom(program: MTProgram, report: ValidationReport,
                           comm_ops: Optional[List[List[CommOp]]] = None
                           ) -> None:
    """Conservative wait-for-graph cycle check (see module docstring)."""
    if comm_ops is None:
        comm_ops = _comm_ops(program)
    grouped = _channels_by_queue(program)

    # Node = (thread, block, position).  Build block-local program-order
    # chains and produce<-consume pairing edges.
    waits_for: Dict[Tuple[int, str, int], List[Tuple[int, str, int]]] = {}
    node_instruction: Dict[Tuple[int, str, int], object] = {}
    per_block_seq: Dict[Tuple[int, str], List[Tuple[int, str, int]]] = {}
    for thread, ops in enumerate(comm_ops):
        for label, position, instruction in ops:
            node = (thread, label, position)
            node_instruction[node] = instruction
            waits_for[node] = []
            per_block_seq.setdefault((thread, label), []).append(node)
    for sequence in per_block_seq.values():
        for earlier, later in zip(sequence, sequence[1:]):
            waits_for[later].append(earlier)

    # Pair the n-th produce with the n-th consume per (queue, block).
    pending: Dict[Tuple[int, str], List[Tuple[int, str, int]]] = {}
    for thread, ops in enumerate(comm_ops):
        for label, position, instruction in ops:
            if instruction.op in PRODUCE_OPS:
                channels = grouped.get(instruction.queue, ())
                if any(channel.source_thread == thread
                       for channel in channels):
                    pending.setdefault((instruction.queue, label),
                                       []).append((thread, label,
                                                   position))
    for thread, ops in enumerate(comm_ops):
        matched: Dict[Tuple[int, str], int] = {}
        for label, position, instruction in ops:
            if instruction.op not in CONSUME_OPS:
                continue
            channels = grouped.get(instruction.queue, ())
            if not any(channel.target_thread == thread
                       for channel in channels):
                continue
            key = (instruction.queue, label)
            rank = matched.get(key, 0)
            matched[key] = rank + 1
            producers = pending.get(key, ())
            if rank < len(producers):
                waits_for[(thread, label, position)].append(
                    producers[rank])

    report.count("wfg_nodes", len(waits_for))
    report.count("wfg_edges",
                 sum(len(edges) for edges in waits_for.values()))

    # Iterative DFS cycle detection.
    WHITE, GREY, BLACK = 0, 1, 2
    color = {node: WHITE for node in waits_for}
    for root in sorted(waits_for):
        if color[root] != WHITE:
            continue
        stack = [(root, iter(waits_for[root]))]
        color[root] = GREY
        path = [root]
        while stack:
            node, edges = stack[-1]
            advanced = False
            for successor in edges:
                if color[successor] == GREY:
                    start = path.index(successor)
                    cycle = path[start:]
                    queues = sorted({
                        node_instruction[n].queue for n in cycle})
                    channels = [grouped[q][0] for q in queues
                                if q in grouped]
                    report.add(
                        "deadlock",
                        "potential deadlock cycle over queue(s) %s in "
                        "block(s) %s: crossed produce/consume order"
                        % (queues,
                           sorted({n[1] for n in cycle})),
                        queue=queues[0] if queues else None,
                        channel=channels[0] if channels else None)
                    continue
                if color[successor] == WHITE:
                    color[successor] = GREY
                    path.append(successor)
                    stack.append((successor,
                                  iter(waits_for[successor])))
                    advanced = True
                    break
            if not advanced:
                color[node] = BLACK
                path.pop()
                stack.pop()


# ---------------------------------------------------------------------------
# Entry point.

def validate_program(program: MTProgram,
                     context: str = "",
                     raise_on_failure: bool = False) -> ValidationReport:
    """Run every static validator family over ``program``."""
    report = ValidationReport()
    report.count("channels_checked", len(program.channels))
    comm_ops = _comm_ops(program)
    report.count("comm_ops_checked",
                 sum(len(ops) for ops in comm_ops))
    check_channel_balance(program, report, comm_ops)
    check_queue_conflicts(program, report)
    check_register_isolation(program, report)
    check_deadlock_freedom(program, report, comm_ops)
    if raise_on_failure and not report.ok:
        raise MTValidationError(report, context)
    return report
