"""Differential fuzzing driver: ``python -m repro fuzz``.

Each iteration samples a random structured program
(:mod:`repro.check.generate`), then runs a matrix of cells over it:
every partitioning technique (GREMIO, DSWP) plus uniformly random
partitions, each with COCO off and on.  Every cell's MTCG output goes
through the static validators (:mod:`repro.check.validators`) and the
differential execution oracle (:mod:`repro.check.oracle`).

A failing cell is *shrunk* by greedy statement/block deletion over the
program sketch (re-deriving the partition deterministically for every
candidate) and the minimized reproducer — sketch JSON, cell
configuration, rendered IR, partition assignment, failure detail — is
persisted into the corpus directory together with a JSON run report, so
a later session can replay it.

Everything is deterministic in ``--seed``: program sampling, partition
draws, argument choice, and queue capacities all derive from it.
"""

from __future__ import annotations

import json
import os
import random
import time
from typing import Callable, Dict, List, Optional, Sequence

from ..analysis.pdg import build_pdg
from ..coco.driver import optimize as coco_optimize
from ..interp.interpreter import run_function
from ..ir.printer import format_function
from ..mtcg.codegen import generate
from ..pipeline.stages import make_partitioner, normalize, technique_config
from .generate import (ProgramSketch, random_args, random_partition,
                       random_sketch, render_program, shrink_candidates,
                       sketch_size, sketch_to_json)
from .oracle import run_oracle
from .validators import validate_program

QUEUE_CAPACITIES = (1, 2, 32)


class FuzzFailure:
    """One minimized counterexample."""

    def __init__(self, iteration: int, cell: str, kind: str, detail: str,
                 sketch: ProgramSketch, n_threads: int, coco: bool,
                 queue_capacity: int, original_size: int):
        self.iteration = iteration
        self.cell = cell            # "gremio" / "dswp" / "random-0" ...
        self.kind = kind            # "validator" / oracle verdict
        self.detail = detail
        self.sketch = sketch
        self.n_threads = n_threads
        self.coco = coco
        self.queue_capacity = queue_capacity
        self.original_size = original_size

    @property
    def shrunk_size(self) -> int:
        return sketch_size(self.sketch)

    def to_dict(self) -> dict:
        return {
            "iteration": self.iteration,
            "cell": self.cell,
            "kind": self.kind,
            "detail": self.detail,
            "n_threads": self.n_threads,
            "coco": self.coco,
            "queue_capacity": self.queue_capacity,
            "sketch": json.loads(sketch_to_json(self.sketch)),
            "original_size": self.original_size,
            "shrunk_size": self.shrunk_size,
        }

    def __repr__(self) -> str:  # pragma: no cover
        return "<FuzzFailure it%d %s %s>" % (self.iteration, self.cell,
                                             self.kind)


class FuzzReport:
    """Aggregate outcome of one fuzzing run."""

    def __init__(self, seed: int, iterations: int):
        self.seed = seed
        self.iterations = iterations
        self.cells_run = 0
        self.programs_generated = 0
        self.shrink_attempts = 0
        self.failures: List[FuzzFailure] = []
        self.counters: Dict[str, int] = {}
        self.elapsed = 0.0

    @property
    def ok(self) -> bool:
        return not self.failures

    def count(self, name: str, amount: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + amount

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "iterations": self.iterations,
            "cells_run": self.cells_run,
            "programs_generated": self.programs_generated,
            "shrink_attempts": self.shrink_attempts,
            "elapsed_seconds": round(self.elapsed, 3),
            "counters": dict(sorted(self.counters.items())),
            "failures": [failure.to_dict() for failure in self.failures],
        }

    def summary(self) -> str:
        return ("fuzz: seed %d, %d iterations, %d cells, %d failure(s), "
                "%.1fs" % (self.seed, self.iterations, self.cells_run,
                           len(self.failures), self.elapsed))


class _Cell:
    """One (partition source, coco, capacity) configuration, rebuildable
    from scratch for any sketch — the unit both fuzzing and shrinking
    evaluate."""

    def __init__(self, name: str, technique: Optional[str],
                 partition_seed: Optional[int], n_threads: int,
                 coco: bool, queue_capacity: int, args: dict):
        self.name = name
        self.technique = technique          # None => random partition
        self.partition_seed = partition_seed
        self.n_threads = n_threads
        self.coco = coco
        self.queue_capacity = queue_capacity
        self.args = args

    def describe(self) -> str:
        return "%s%s/t%d/cap%d" % (self.name,
                                   "+coco" if self.coco else "",
                                   self.n_threads, self.queue_capacity)


def _evaluate_cell(sketch: ProgramSketch, cell: _Cell,
                   report: Optional[FuzzReport] = None
                   ) -> Optional[Dict[str, str]]:
    """Build and check one cell from scratch; return a failure record
    (kind + detail) or None when everything passes."""
    function = render_program(sketch)
    normalize(function)
    profile_result = run_function(function, cell.args)
    pdg = build_pdg(function)
    if cell.technique is not None:
        config = technique_config(cell.technique).with_cores(
            cell.n_threads)
        partition = make_partitioner(cell.technique, config).partition(
            function, pdg, profile_result.profile, cell.n_threads)
    else:
        rng = random.Random(cell.partition_seed)
        partition = random_partition(rng, function,
                                     n_threads=cell.n_threads)
    data_channels = None
    condition_covered = frozenset()
    if cell.coco:
        coco = coco_optimize(function, pdg, partition,
                             profile_result.profile)
        data_channels = coco.data_channels
        condition_covered = coco.condition_covered
    program = generate(function, pdg, partition,
                       data_channels=data_channels,
                       condition_covered=condition_covered)

    validation = validate_program(program)
    if report is not None:
        for name, amount in validation.counters.items():
            report.count("validator_" + name, amount)
        report.count("programs_validated")
    if not validation.ok:
        return {"kind": "validator", "detail": validation.describe()}

    oracle = run_oracle(function, program, cell.args,
                        queue_capacity=cell.queue_capacity)
    if report is not None:
        report.count("oracle_" + oracle.verdict)
    if not oracle.ok:
        return {"kind": oracle.verdict, "detail": oracle.describe()}
    return None


def _shrink(sketch: ProgramSketch, cell: _Cell, report: FuzzReport,
            max_attempts: int = 150) -> ProgramSketch:
    """Greedy deletion: keep taking the first smaller variant that still
    fails, until none does or the attempt budget runs out."""
    current = sketch
    attempts = 0
    improved = True
    while improved and attempts < max_attempts:
        improved = False
        for candidate in shrink_candidates(current):
            attempts += 1
            report.shrink_attempts += 1
            if attempts >= max_attempts:
                break
            try:
                failure = _evaluate_cell(candidate, cell)
            except Exception:
                # A crash during rebuild is a different bug; keep the
                # current reproducer rather than chase it.
                continue
            if failure is not None:
                current = candidate
                improved = True
                break
    return current


def _iteration_cells(rng: random.Random, seed: int, iteration: int,
                     techniques: Sequence[str],
                     random_partitions: int, max_threads: int,
                     coco_modes: Sequence[bool]) -> List[_Cell]:
    args = random_args(rng)
    n_threads = rng.randint(2, max_threads)
    capacity = rng.choice(QUEUE_CAPACITIES)
    cells: List[_Cell] = []
    for technique in techniques:
        for coco in coco_modes:
            cells.append(_Cell(technique, technique, None, n_threads,
                               coco, capacity, args))
    for index in range(random_partitions):
        partition_seed = (seed * 1_000_003 + iteration) * 101 + index
        for coco in coco_modes:
            cells.append(_Cell("random-%d" % index, None, partition_seed,
                               n_threads, coco, capacity, args))
    return cells


def run_fuzz(seed: int = 0, iterations: int = 100,
             corpus_dir: Optional[str] = None,
             techniques: Sequence[str] = ("gremio", "dswp"),
             random_partitions: int = 2,
             coco_modes: Sequence[bool] = (False, True),
             max_threads: int = 3, depth: int = 2,
             progress: Optional[Callable[[str], None]] = None
             ) -> FuzzReport:
    """Run the differential fuzzing loop; see the module docstring."""
    report = FuzzReport(seed, iterations)
    start = time.perf_counter()
    for iteration in range(iterations):
        rng = random.Random(seed * 1_000_003 + iteration)
        sketch = random_sketch(rng, depth=depth)
        report.programs_generated += 1
        cells = _iteration_cells(rng, seed, iteration, techniques,
                                 random_partitions, max_threads,
                                 coco_modes)
        for cell in cells:
            report.cells_run += 1
            failure = _evaluate_cell(sketch, cell, report)
            if failure is None:
                continue
            original_size = sketch_size(sketch)
            shrunk = _shrink(sketch, cell, report)
            record = FuzzFailure(iteration, cell.name, failure["kind"],
                                 failure["detail"], shrunk,
                                 cell.n_threads, cell.coco,
                                 cell.queue_capacity, original_size)
            report.failures.append(record)
            if corpus_dir:
                _persist_failure(corpus_dir, record, cell)
            if progress is not None:
                progress("iteration %d: FAILURE in %s (%s)"
                         % (iteration, cell.describe(), failure["kind"]))
        if progress is not None and (iteration + 1) % 10 == 0:
            progress("iteration %d/%d: %d cells, %d failure(s)"
                     % (iteration + 1, iterations, report.cells_run,
                        len(report.failures)))
    report.elapsed = time.perf_counter() - start
    if corpus_dir:
        _persist_report(corpus_dir, report)
    return report


# ---------------------------------------------------------------------------
# Corpus persistence.

def _persist_failure(corpus_dir: str, failure: FuzzFailure,
                     cell: _Cell) -> None:
    os.makedirs(corpus_dir, exist_ok=True)
    stem = "failure-%03d-%s%s" % (failure.iteration, failure.cell,
                                  "-coco" if failure.coco else "")
    payload = failure.to_dict()
    payload["args"] = cell.args
    with open(os.path.join(corpus_dir, stem + ".json"), "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
    # A human-readable rendering of the (normalized) reproducer.
    try:
        function = render_program(failure.sketch)
        normalize(function)
        text = format_function(function, show_iids=True)
    except Exception as error:  # pragma: no cover
        text = "; rendering failed: %s" % error
    with open(os.path.join(corpus_dir, stem + ".ir.txt"), "w") as handle:
        handle.write("; %s\n; %s\n%s\n"
                     % (cell.describe(), failure.detail.replace("\n", " | "),
                        text))


def _persist_report(corpus_dir: str, report: FuzzReport) -> None:
    os.makedirs(corpus_dir, exist_ok=True)
    with open(os.path.join(corpus_dir, "report.json"), "w") as handle:
        json.dump(report.to_dict(), handle, indent=2, sort_keys=True)
