"""Deterministic content-addressed fingerprints for pipeline stages.

Every stage of the staged pipeline derives a cache key from *content*:
the textual IR of the function (with iids), the machine configuration,
the profiling inputs, and the stage options.  Two runs that would compute
the same artifact — regardless of process, workload name, or call path —
therefore produce the same key, which is what makes the persistent
artifact cache (:mod:`repro.pipeline.cache`) safe to share across
processes and sweep invocations.
"""

from __future__ import annotations

import hashlib
from dataclasses import fields, is_dataclass
from typing import Mapping, Optional

from ..ir.cfg import Function
from ..ir.printer import format_function
from ..machine.config import MachineConfig

#: Bump to invalidate every previously persisted artifact (e.g. when a
#: pass changes behaviour without changing its inputs' content).
SCHEMA_VERSION = "repro-pipeline-1"


def digest(*parts: str) -> str:
    """SHA-256 over the schema version plus the given string parts."""
    h = hashlib.sha256()
    h.update(SCHEMA_VERSION.encode("utf-8"))
    for part in parts:
        h.update(b"\x00")
        h.update(part.encode("utf-8", "backslashreplace"))
    return h.hexdigest()


def fingerprint_function(function: Function) -> str:
    """Content hash of a function: the full textual IR including iids,
    memory objects, pointer parameters, and live-outs."""
    return digest("function", format_function(function, show_iids=True))


def fingerprint_config(config: MachineConfig) -> str:
    """Content hash of a machine configuration (all dataclass fields,
    with dict-valued fields ordered deterministically)."""
    parts = []
    for field in sorted(fields(config), key=lambda f: f.name):
        value = getattr(config, field.name)
        if isinstance(value, dict):
            value = sorted((str(key), value[key]) for key in value)
        elif is_dataclass(value):
            value = repr(value)
        parts.append("%s=%r" % (field.name, value))
    return digest("config", ";".join(parts))


def fingerprint_inputs(args: Optional[Mapping[str, object]],
                       memory: Optional[Mapping[str, object]]) -> str:
    """Content hash of interpreter inputs (scalar args + memory init)."""
    return digest("inputs", _mapping_repr(args), _mapping_repr(memory))


def fingerprint_profile(profile) -> str:
    """Content hash of an :class:`~repro.interp.profile.EdgeProfile` —
    used when a caller supplies a profile object directly, so downstream
    stage keys still chain on profile *content*."""
    blocks = sorted(profile.block_counts.items())
    edges = sorted(profile.edge_counts.items())
    return digest("profile", repr(blocks), repr(edges))


def _mapping_repr(mapping: Optional[Mapping[str, object]]) -> str:
    if not mapping:
        return "{}"
    return repr(sorted((str(key), repr(value))
                       for key, value in dict(mapping).items()))
