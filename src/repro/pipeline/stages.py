"""The staged pass manager: named passes with declared artifacts,
content-addressed cache keys, and instrumentation hooks.

The end-to-end methodology (normalize -> profile -> pdg -> partition ->
[coco] -> mtcg -> [schedule] -> simulate-st / simulate-mt) is expressed
as an ordered list of :class:`Stage` objects.  Each stage

* reads and writes named slots of a :class:`PipelineContext`;
* derives a deterministic fingerprint from the *content* of its inputs
  (IR text, machine configuration, profiling inputs, stage options), so
  equal work is recognized across workloads, processes, and sweeps;
* is skipped when the persistent :class:`~repro.pipeline.cache
  .ArtifactCache` holds an artifact for its fingerprint;
* records wall time, cache traffic, and size counters into a
  :class:`~repro.pipeline.telemetry.Telemetry`.

The legacy ``parallelize()``/``evaluate_workload()`` entry points in
:mod:`repro.pipeline.core` are thin wrappers that build a context and run
a stage list.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, Iterable, Optional, Sequence

from ..analysis.alias import AliasAnalysis
from ..analysis.pdg import build_pdg
from ..coco.driver import optimize as coco_optimize
from ..interp.interpreter import run_function
from ..interp.profile import static_profile
from ..ir.cfg import Function
from ..ir.interning import intern_program
from ..ir.transforms import renumber_iids, split_critical_edges
from ..machine.backend import (DEFAULT_BACKEND, simulate_program_fn,
                               simulate_single_fn)
from ..machine.config import DEFAULT_CONFIG, MachineConfig
from ..machine.placement import make_placement
from ..mtcg.codegen import generate
from ..partition.base import Partitioner
from ..partition.dswp import DSWPPartitioner
from ..partition.gremio import GremioPartitioner
from .cache import ArtifactCache
from .fingerprint import (digest, fingerprint_config, fingerprint_function,
                          fingerprint_inputs, fingerprint_profile)
from .telemetry import Telemetry

TECHNIQUES = ("gremio", "gremio-flat", "dswp")

#: Tunable cost-model parameters each technique's partitioner accepts as
#: keyword arguments (the ``partitioner.<param>`` override namespace of
#: :func:`repro.pipeline.matrix.validate_overrides`).  DSWP's greedy
#: packer has no free thresholds; ``hierarchical`` is deliberately not
#: tunable — it is what distinguishes the ``gremio``/``gremio-flat``
#: techniques.
PARTITIONER_PARAMS: Dict[str, tuple] = {
    "gremio": ("split_threshold", "occupancy_factor", "latency_factor"),
    "gremio-flat": ("split_threshold", "occupancy_factor",
                    "latency_factor"),
    "dswp": (),
}


def make_partitioner(technique: str, config: MachineConfig,
                     **params) -> Partitioner:
    allowed = PARTITIONER_PARAMS.get(technique)
    if allowed is None:
        raise ValueError("unknown technique %r (use one of %s)"
                         % (technique, TECHNIQUES))
    unknown = sorted(set(params) - set(allowed))
    if unknown:
        raise ValueError(
            "technique %r does not accept partitioner parameter(s) %s "
            "(tunable: %s)" % (technique, ", ".join(unknown),
                               ", ".join(allowed) or "none"))
    if technique == "gremio":
        return GremioPartitioner(config, **params)
    if technique == "gremio-flat":
        return GremioPartitioner(config, hierarchical=False, **params)
    return DSWPPartitioner(config)


def technique_config(technique: str,
                     base: MachineConfig = DEFAULT_CONFIG) -> MachineConfig:
    """DSWP uses the 32-entry queue configuration; others single-entry."""
    return base.for_dswp() if technique == "dswp" else base


def normalize(function: Function, optimize: bool = False) -> Function:
    """Prepare a freshly built function for the pipeline (in place):
    optionally run the classical scalar optimizer, then split critical
    edges and renumber instructions in program order."""
    if optimize:
        from ..opt import optimize_function
        optimize_function(function)
    split_critical_edges(function)
    renumber_iids(function)
    return function


class PipelineContext:
    """Mutable state threaded through one pipeline run.

    ``values`` holds the named artifacts stages produce; ``options``
    the run configuration (technique, thread count, alias mode, inputs,
    ...); ``fingerprints`` the per-stage cache keys actually used.
    """

    def __init__(self, function: Function, options: Dict[str, object],
                 config: MachineConfig,
                 sim_config: Optional[MachineConfig] = None,
                 cache: Optional[ArtifactCache] = None,
                 telemetry: Optional[Telemetry] = None):
        self.values: Dict[str, object] = {
            "function": function,
            "profile": options.get("profile"),
            "pdg": None,
            "partition": None,
            "coco_result": None,
            "data_channels": None,
            "condition_covered": frozenset(),
            "program": None,
            "placement": None,
            "st_result": None,
            "mt_result": None,
            "mt_trace": None,
        }
        self.options = options
        self.config = config            # partitioning config (with threads)
        self.sim_config = sim_config    # simulation config (as passed in)
        self.cache = cache
        self.telemetry = telemetry if telemetry is not None else Telemetry()
        self.fingerprints: Dict[str, Optional[str]] = {}
        self.norm_fp: Optional[str] = None

    @property
    def function(self) -> Function:
        return self.values["function"]


class Stage:
    """One named pass: run callback, fingerprint derivation, cache
    policy, and counter hook."""

    def __init__(self, name: str,
                 run: Callable[[PipelineContext], Optional[dict]],
                 fingerprint: Optional[
                     Callable[[PipelineContext], Optional[str]]] = None,
                 persist: bool = False,
                 counters: Optional[
                     Callable[[PipelineContext], None]] = None,
                 enabled: Optional[
                     Callable[[PipelineContext], bool]] = None):
        self.name = name
        self.run = run
        self.fingerprint = fingerprint
        self.persist = persist
        self.counters = counters
        self.enabled = enabled

    def __repr__(self) -> str:  # pragma: no cover
        return "<Stage %s%s>" % (self.name,
                                 " (persistent)" if self.persist else "")


def execute(ctx: PipelineContext, stage_names: Sequence[str]) -> None:
    """Run the named stages in order against ``ctx``, consulting the
    artifact cache for persistent stages and recording telemetry."""
    for name in stage_names:
        _run_stage(ctx, STAGES[name])


def _run_stage(ctx: PipelineContext, stage: Stage) -> None:
    if stage.enabled is not None and not stage.enabled(ctx):
        return
    start = time.perf_counter()
    key = stage.fingerprint(ctx) if stage.fingerprint is not None else None
    ctx.fingerprints[stage.name] = key
    cached = (stage.persist and key is not None
              and ctx.cache is not None and ctx.cache.enabled)
    if cached:
        hit, payload = ctx.cache.load(stage.name, key)
        if hit:
            ctx.values.update(payload)
            ctx.telemetry.record_hit(stage.name,
                                     time.perf_counter() - start)
            if stage.counters is not None:
                stage.counters(ctx)
            return
    produced = stage.run(ctx)
    if produced:
        ctx.values.update(produced)
    if cached and produced:
        ctx.cache.store(stage.name, key, produced)
    ctx.telemetry.record_run(stage.name, time.perf_counter() - start,
                             cache_miss=cached)
    if stage.counters is not None:
        stage.counters(ctx)


# ---------------------------------------------------------------------------
# Stage implementations.

def _run_normalize(ctx: PipelineContext) -> dict:
    if not ctx.options.get("normalized", False):
        normalize(ctx.function)
    ctx.norm_fp = fingerprint_function(ctx.function)
    return {}


def _fp_profile(ctx: PipelineContext) -> Optional[str]:
    if ctx.options.get("profile") is not None:
        return None  # supplied directly; adopt it, don't cache it
    return digest("stage:profile", ctx.norm_fp,
                  fingerprint_inputs(ctx.options.get("profile_args"),
                                     ctx.options.get("profile_memory")))


def _run_profile(ctx: PipelineContext) -> dict:
    supplied = ctx.options.get("profile")
    if supplied is not None:
        return {"profile": supplied}
    profile_args = ctx.options.get("profile_args")
    profile_memory = ctx.options.get("profile_memory")
    if profile_args or profile_memory:
        profile = run_function(ctx.function, profile_args,
                               profile_memory).profile
    else:
        profile = static_profile(ctx.function)
    return {"profile": profile}


def _fp_pdg(ctx: PipelineContext) -> str:
    return digest("stage:pdg", ctx.norm_fp,
                  str(ctx.options.get("alias_mode", "annotated")))


def _run_pdg(ctx: PipelineContext) -> dict:
    alias = AliasAnalysis(ctx.function,
                          ctx.options.get("alias_mode", "annotated"))
    return {"pdg": build_pdg(ctx.function, alias)}


def _count_pdg(ctx: PipelineContext) -> None:
    pdg = ctx.values["pdg"]
    ctx.telemetry.count("pdg_nodes", len(pdg.nodes))
    ctx.telemetry.count("pdg_edges", len(pdg.arcs))


def _fp_partition(ctx: PipelineContext) -> str:
    parts = ["stage:partition",
             ctx.fingerprints.get("pdg") or "",
             fingerprint_profile(ctx.values["profile"]),
             str(ctx.options["technique"]),
             str(ctx.options["n_threads"]),
             fingerprint_config(ctx.config)]
    params = ctx.options.get("partitioner_args")
    if params:
        # Appended only when present so default-parameter fingerprints
        # (and the cache entries behind them) are unchanged.
        parts.append("params:%r" % (sorted(params.items()),))
    return digest(*parts)


def _run_partition(ctx: PipelineContext) -> dict:
    params = ctx.options.get("partitioner_args") or {}
    partitioner = make_partitioner(ctx.options["technique"], ctx.config,
                                   **params)
    partition = partitioner.partition(ctx.function, ctx.values["pdg"],
                                      ctx.values["profile"],
                                      ctx.options["n_threads"])
    return {"partition": partition}


def _coco_enabled(ctx: PipelineContext) -> bool:
    return bool(ctx.options.get("coco"))


def _fp_coco(ctx: PipelineContext) -> str:
    return digest("stage:coco", ctx.fingerprints.get("partition") or "")


def _run_coco(ctx: PipelineContext) -> dict:
    result = coco_optimize(ctx.function, ctx.values["pdg"],
                           ctx.values["partition"], ctx.values["profile"])
    return {"coco_result": result,
            "data_channels": result.data_channels,
            "condition_covered": result.condition_covered}


def _count_coco(ctx: PipelineContext) -> None:
    result = ctx.values["coco_result"]
    if result is not None:
        ctx.telemetry.count("coco_iterations", result.iterations)


def _fp_mtcg(ctx: PipelineContext) -> str:
    config = ctx.sim_config if ctx.sim_config is not None else ctx.config
    topo = config.topology
    return digest("stage:mtcg", ctx.fingerprints.get("partition") or "",
                  "coco" if ctx.options.get("coco") else "plain",
                  "" if topo is None else "topology:%r" % (topo,))


def _run_mtcg(ctx: PipelineContext) -> dict:
    config = ctx.sim_config if ctx.sim_config is not None else ctx.config
    program = generate(ctx.function, ctx.values["pdg"],
                       ctx.values["partition"],
                       data_channels=ctx.values["data_channels"],
                       condition_covered=ctx.values["condition_covered"],
                       config=config)
    # Thread functions are finished artifacts from here on (the local
    # scheduler only reorders instruction lists): collapse them to
    # interned flyweights so sweep cells, pool payloads, and cache
    # pickles share one object per distinct instruction.
    return {"program": intern_program(program)}


def _count_mtcg(ctx: PipelineContext) -> None:
    ctx.telemetry.count("channels_inserted",
                        len(ctx.values["program"].channels))


def _check_enabled(ctx: PipelineContext) -> bool:
    return bool(ctx.options.get("mt_check"))


def _run_check(ctx: PipelineContext) -> dict:
    # Imported lazily: repro.check sits above the pipeline in the layer
    # order (its fuzzer drives the pipeline), so the stage table must not
    # import it at module load.
    from ..check.validators import MTValidationError, validate_program
    report = validate_program(ctx.values["program"])
    ctx.telemetry.count("check_programs_validated", 1)
    for name, amount in report.counters.items():
        ctx.telemetry.count("check_" + name, amount)
    if not report.ok:
        ctx.telemetry.count("check_violations", len(report.violations))
        raise MTValidationError(report, ctx.function.name)
    return {}


def _schedule_enabled(ctx: PipelineContext) -> bool:
    return ctx.options.get("local_schedule") is not None


def _run_schedule(ctx: PipelineContext) -> dict:
    from ..opt.scheduler import schedule_function, schedule_program
    priority = ctx.options["local_schedule"]
    config = ctx.sim_config if ctx.sim_config is not None else ctx.config
    schedule_program(ctx.values["program"], config, priority)
    schedule_function(ctx.function, config, priority)
    return {}


def _fp_placement(ctx: PipelineContext) -> str:
    config = ctx.sim_config if ctx.sim_config is not None else ctx.config
    return digest("stage:placement",
                  ctx.fingerprints.get("mtcg") or "",
                  str(ctx.options.get("placer", "identity")),
                  str(ctx.options["n_threads"]),
                  fingerprint_config(config))


def _run_placement(ctx: PipelineContext) -> dict:
    n_threads = max(int(ctx.options["n_threads"]), 1)
    config = ctx.sim_config if ctx.sim_config is not None else ctx.config
    # with_cores() sizes the flat default; an explicit topology wins.
    topo = config.with_cores(n_threads).resolve_topology()
    placement = make_placement(ctx.options.get("placer", "identity"),
                               n_threads, topo,
                               pdg=ctx.values["pdg"],
                               partition=ctx.values["partition"],
                               profile=ctx.values["profile"])
    return {"placement": placement}


def _count_placement(ctx: PipelineContext) -> None:
    placement = ctx.values["placement"]
    moved = sum(1 for thread, core in enumerate(placement.cores)
                if thread != core)
    ctx.telemetry.count("placement_threads_moved", moved)


def _measure_fp(ctx: PipelineContext) -> str:
    return fingerprint_inputs(ctx.options.get("measure_args"),
                              ctx.options.get("measure_memory"))


def _fp_simulate_st(ctx: PipelineContext) -> str:
    config = ctx.sim_config if ctx.sim_config is not None else ctx.config
    return digest("stage:simulate-st", ctx.norm_fp, _measure_fp(ctx),
                  fingerprint_config(config.with_cores(1)),
                  repr(ctx.options.get("local_schedule")))


def _run_simulate_st(ctx: PipelineContext) -> dict:
    config = ctx.sim_config if ctx.sim_config is not None else ctx.config
    # The backend is deliberately absent from the stage fingerprint:
    # backends are bit-identical (tests/test_backend_equivalence.py), so
    # reference and fast runs share one cache namespace.
    simulate_single = simulate_single_fn(
        ctx.options.get("backend", DEFAULT_BACKEND))
    result = simulate_single(ctx.function, ctx.options.get("measure_args"),
                             ctx.options.get("measure_memory"),
                             config=config)
    return {"st_result": result}


def _count_simulate_st(ctx: PipelineContext) -> None:
    ctx.telemetry.count("st_cycles", ctx.values["st_result"].cycles)


def _fp_simulate_mt(ctx: PipelineContext) -> Optional[str]:
    # Traced runs are never cached (and never replayed from an untraced
    # cache entry): the event stream is a side effect the artifact cache
    # cannot reproduce.
    if ctx.options.get("trace"):
        return None
    config = ctx.sim_config if ctx.sim_config is not None else ctx.config
    return digest("stage:simulate-mt",
                  ctx.fingerprints.get("mtcg") or "", _measure_fp(ctx),
                  ctx.fingerprints.get("placement") or "",
                  fingerprint_config(config),
                  repr(ctx.options.get("local_schedule")))


def _run_simulate_mt(ctx: PipelineContext) -> dict:
    config = ctx.sim_config if ctx.sim_config is not None else ctx.config
    simulate_program = simulate_program_fn(
        ctx.options.get("backend", DEFAULT_BACKEND))
    if ctx.options.get("trace"):
        from ..trace import DEFAULT_EVENT_LIMIT, TraceCollector, analyze
        limit = ctx.options.get("trace_limit") or DEFAULT_EVENT_LIMIT
        collector = TraceCollector(limit=limit)
        result = simulate_program(ctx.values["program"],
                                  ctx.options.get("measure_args"),
                                  ctx.options.get("measure_memory"),
                                  config=config, tracer=collector,
                                  placement=ctx.values.get("placement"))
        return {"mt_result": result, "mt_trace": analyze(collector)}
    result = simulate_program(ctx.values["program"],
                              ctx.options.get("measure_args"),
                              ctx.options.get("measure_memory"),
                              config=config,
                              placement=ctx.values.get("placement"))
    return {"mt_result": result}


def _count_simulate_mt(ctx: PipelineContext) -> None:
    result = ctx.values["mt_result"]
    ctx.telemetry.count("mt_cycles", result.cycles)
    ctx.telemetry.count("comm_instructions",
                        result.communication_instructions)
    for key, value in result.cache_stats.items():
        ctx.telemetry.count("cache_" + key, value)
    trace = ctx.values.get("mt_trace")
    if trace is not None:
        ctx.telemetry.count("trace_events", trace.events_recorded)


STAGES: Dict[str, Stage] = {stage.name: stage for stage in (
    Stage("normalize", _run_normalize),
    Stage("profile", _run_profile, _fp_profile, persist=True),
    Stage("pdg", _run_pdg, _fp_pdg, persist=True, counters=_count_pdg),
    Stage("partition", _run_partition, _fp_partition, persist=True),
    Stage("coco", _run_coco, _fp_coco, persist=True,
          counters=_count_coco, enabled=_coco_enabled),
    Stage("mtcg", _run_mtcg, _fp_mtcg, persist=True, counters=_count_mtcg),
    Stage("check", _run_check, enabled=_check_enabled),
    Stage("schedule", _run_schedule, enabled=_schedule_enabled),
    Stage("placement", _run_placement, _fp_placement, persist=True,
          counters=_count_placement),
    Stage("simulate-st", _run_simulate_st, _fp_simulate_st, persist=True,
          counters=_count_simulate_st),
    Stage("simulate-mt", _run_simulate_mt, _fp_simulate_mt, persist=True,
          counters=_count_simulate_mt),
)}

#: Stage lists the public wrappers execute.  ``check`` (the static MT
#: validators, see :mod:`repro.check`) is present but disabled unless the
#: run sets the ``mt_check`` option (CLI ``--check``; always on under
#: fuzzing).
PARALLELIZE_STAGES = ("normalize", "profile", "pdg", "partition", "coco",
                      "mtcg", "check")
EVALUATE_STAGES = PARALLELIZE_STAGES + ("schedule", "placement",
                                        "simulate-st", "simulate-mt")


def stage_names() -> Iterable[str]:
    return tuple(STAGES)
