"""The end-to-end GMT scheduling pipeline (legacy entry points).

One call takes a workload (or any IR function) through the whole stack:

    normalize CFG -> profile (train inputs) -> PDG -> partition (GREMIO or
    DSWP) -> [COCO] -> MTCG -> timed simulation on the CMP model (ref
    inputs) -> metrics

``parallelize()`` and ``evaluate_workload()`` keep their historical
signatures, but are now thin wrappers over the staged pass manager
(:mod:`repro.pipeline.stages`): every stage is fingerprinted, consults
the persistent artifact cache, and records telemetry.  Batch evaluation
across a (workload x technique x coco x threads) matrix lives in
:mod:`repro.pipeline.matrix`.
"""

from __future__ import annotations

import dataclasses
from typing import Mapping, Optional, Union

from ..analysis.pdg import PDG
from ..coco.driver import CocoResult
from ..interp.profile import EdgeProfile
from ..ir.cfg import Function
from ..machine.backend import DEFAULT_BACKEND, validate_backend
from ..machine.config import MachineConfig
from ..machine.timing import TimedResult
from ..mtcg.program import MTProgram
from ..partition.base import Partition
from ..workloads.common import Workload
from .cache import ArtifactCache, get_cache
from .stages import (EVALUATE_STAGES, PARALLELIZE_STAGES, PipelineContext,
                     execute, technique_config)
from .telemetry import Telemetry, global_telemetry

CacheOption = Union[ArtifactCache, bool, None]


def _resolve_cache(cache: CacheOption) -> Optional[ArtifactCache]:
    if cache is None:
        return get_cache()
    if cache is False:
        return None
    if cache is True:
        return get_cache()
    return cache


def _publish_telemetry(run: Telemetry,
                       telemetry: Optional[Telemetry]) -> None:
    """Fold one run's telemetry into the process-global accumulator and,
    when distinct, the caller-supplied collector."""
    accumulator = global_telemetry()
    if accumulator is not run:
        accumulator.merge(run)
    if telemetry is not None and telemetry is not run \
            and telemetry is not accumulator:
        telemetry.merge(run)


class Parallelization:
    """A parallelized function plus everything used to build it."""

    def __init__(self, function: Function, profile: EdgeProfile, pdg: PDG,
                 partition: Partition, program: MTProgram,
                 coco_result: Optional[CocoResult],
                 config: MachineConfig):
        self.function = function
        self.profile = profile
        self.pdg = pdg
        self.partition = partition
        self.program = program
        self.coco_result = coco_result
        self.config = config
        # Populated by the staged pipeline: per-stage cache keys and the
        # per-run telemetry (stage timings, cache traffic, counters).
        self.fingerprints = {}
        self.telemetry: Optional[Telemetry] = None


def parallelize(function: Function,
                technique: str = "gremio",
                n_threads: int = 2,
                profile: Optional[EdgeProfile] = None,
                profile_args: Optional[Mapping[str, object]] = None,
                profile_memory: Optional[Mapping[str, object]] = None,
                coco: bool = False,
                config: Optional[MachineConfig] = None,
                normalized: bool = False,
                alias_mode: str = "annotated",
                mt_check: bool = False,
                cache: CacheOption = None,
                telemetry: Optional[Telemetry] = None,
                topology: Optional[str] = None,
                partitioner_args: Optional[
                    Mapping[str, object]] = None) -> Parallelization:
    """Parallelize ``function`` into ``n_threads`` threads.

    ``profile`` may be supplied directly; otherwise the function is
    profiled by interpretation on ``profile_args``/``profile_memory``, or
    with the static estimator when no inputs are given either.
    ``alias_mode`` selects the memory-disambiguation power (see
    :class:`repro.analysis.AliasAnalysis`).

    ``cache`` selects the artifact cache (default: the process-wide one;
    ``False`` disables caching for this call); ``telemetry`` optionally
    collects this run's stage timings in addition to the per-result
    ``.telemetry`` attribute and the process-global accumulator.

    ``mt_check`` enables the ``check`` stage: the static MT validators of
    :mod:`repro.check.validators` run over the MTCG output and raise
    :class:`~repro.check.validators.MTValidationError` on any violation.

    ``topology`` names a machine-topology preset; the partition cost
    models then see the clustered machine (see :func:`evaluate_workload`).
    ``partitioner_args`` forwards tunable cost-model parameters to the
    technique's partitioner (see
    :data:`repro.pipeline.stages.PARTITIONER_PARAMS`).
    """
    if config is None:
        config = technique_config(technique)
    if topology is not None:
        from ..machine.topology import get_topology
        config = dataclasses.replace(config, topology=get_topology(topology))
    config = config.with_cores(n_threads)
    run_telemetry = Telemetry()
    ctx = PipelineContext(
        function,
        options={
            "technique": technique,
            "n_threads": n_threads,
            "coco": coco,
            "alias_mode": alias_mode,
            "normalized": normalized,
            "profile": profile,
            "profile_args": profile_args,
            "profile_memory": profile_memory,
            "mt_check": mt_check,
            "partitioner_args": dict(partitioner_args)
            if partitioner_args else None,
        },
        config=config,
        cache=_resolve_cache(cache),
        telemetry=run_telemetry)
    execute(ctx, PARALLELIZE_STAGES)
    _publish_telemetry(run_telemetry, telemetry)
    result = Parallelization(function, ctx.values["profile"],
                             ctx.values["pdg"], ctx.values["partition"],
                             ctx.values["program"],
                             ctx.values["coco_result"], config)
    result.fingerprints = dict(ctx.fingerprints)
    result.telemetry = run_telemetry
    return result


class Evaluation:
    """Measured results of one (workload, technique, coco) configuration."""

    def __init__(self, workload: Workload, technique: str, coco: bool,
                 n_threads: int, parallelization: Parallelization,
                 st_result: TimedResult, mt_result: TimedResult):
        self.workload = workload
        self.technique = technique
        self.coco = coco
        self.n_threads = n_threads
        self.parallelization = parallelization
        self.st_result = st_result
        self.mt_result = mt_result
        # Populated by the staged pipeline (see Parallelization).
        self.fingerprints = {}
        self.telemetry: Optional[Telemetry] = None
        # TraceAnalysis of the MT run when evaluated with trace=True.
        self.trace = None

    @property
    def speedup(self) -> float:
        if self.mt_result.cycles == 0:
            return 1.0
        return self.st_result.cycles / self.mt_result.cycles

    @property
    def communication_instructions(self) -> int:
        return self.mt_result.communication_instructions

    @property
    def computation_instructions(self) -> int:
        return self.mt_result.computation_instructions

    @property
    def communication_fraction(self) -> float:
        total = self.mt_result.dynamic_instructions
        if total == 0:
            return 0.0
        return self.mt_result.communication_instructions / total

    def metrics(self) -> Mapping[str, float]:
        """The paper metrics as a flat JSON-able mapping — the payload
        the :mod:`repro.api` facade and the ``repro serve`` daemon
        return for one evaluated cell."""
        metrics = {
            "speedup": self.speedup,
            "st_cycles": float(self.st_result.cycles),
            "mt_cycles": float(self.mt_result.cycles),
            "dynamic_instructions":
                float(self.mt_result.dynamic_instructions),
            "communication_instructions":
                float(self.communication_instructions),
            "computation_instructions":
                float(self.computation_instructions),
            "communication_fraction": self.communication_fraction,
            "channels": float(len(self.parallelization.program.channels)),
        }
        for key, value in self.mt_result.cache_stats.items():
            metrics["cache_" + key] = float(value)
        for key, value in self.st_result.cache_stats.items():
            metrics["st_cache_" + key] = float(value)
        if self.trace is not None:
            metrics["critical_path_cycles"] = \
                float(self.trace.critical_path.length)
            metrics["critical_path_instructions"] = \
                float(self.trace.critical_path.instructions)
        return metrics

    def __repr__(self) -> str:  # pragma: no cover
        return "<Evaluation %s/%s%s: speedup %.2fx, comm %.1f%%>" % (
            self.workload.name, self.technique,
            "+coco" if self.coco else "", self.speedup,
            100 * self.communication_fraction)


def evaluate_workload(workload: Workload, technique: str = "gremio",
                      n_threads: int = 2, coco: bool = False,
                      scale: str = "ref",
                      config: Optional[MachineConfig] = None,
                      check: bool = True,
                      alias_mode: str = "annotated",
                      local_schedule: Optional[str] = None,
                      mt_check: bool = False,
                      cache: CacheOption = None,
                      telemetry: Optional[Telemetry] = None,
                      trace: bool = False,
                      trace_limit: Optional[int] = None,
                      topology: Optional[str] = None,
                      placer: str = "identity",
                      backend: str = DEFAULT_BACKEND,
                      partitioner_args: Optional[
                          Mapping[str, object]] = None) -> Evaluation:
    """Run the full methodology for one workload: profile on `train`,
    measure on ``scale`` (default `ref`), and verify the multi-threaded
    run produced the single-threaded results.

    ``local_schedule`` optionally runs the downstream local instruction
    scheduler over both the single-threaded baseline and every generated
    thread, with the given produce/consume priority ("early"/"late"/
    "neutral") — the papers' post-MT scheduling stage.  ``mt_check``
    enables the static MT validator stage; ``cache`` and ``telemetry``
    are forwarded to the staged pipeline (see :func:`parallelize`).

    ``trace=True`` runs the MT simulation with a
    :class:`repro.trace.TraceCollector` attached and exposes the
    resulting :class:`repro.trace.TraceAnalysis` as ``evaluation.trace``
    (the traced simulate-mt stage bypasses the artifact cache;
    ``trace_limit`` bounds the event ring).  Simulated cycle counts are
    bit-identical with tracing on or off.

    ``topology`` names a machine-topology preset (see
    :data:`repro.machine.topology.TOPOLOGIES`) — partition cost models,
    the placement stage, and the simulator all see the clustered machine;
    ``placer`` chooses the thread->core placer ("identity"/"affinity").
    Both default to the flat legacy machine, which is cycle-invariant.

    ``backend`` selects the simulator implementation ("reference" or
    "fast", see :mod:`repro.machine.backend`).  Backends are
    bit-identical by contract, so the choice never enters cache
    fingerprints or request keys — it only trades host wall time.

    ``partitioner_args`` forwards tunable cost-model parameters (e.g.
    ``split_threshold``) to the technique's partitioner; they enter the
    partition-stage fingerprint, so distinct parameters never share
    cache entries (see
    :data:`repro.pipeline.stages.PARTITIONER_PARAMS`).
    """
    validate_backend(backend)
    function = workload.build()
    train = workload.make_inputs("train")
    measure = workload.make_inputs(scale)
    if config is None:
        config = technique_config(technique)
    if topology is not None:
        from ..machine.topology import get_topology
        config = dataclasses.replace(config, topology=get_topology(topology))
    effective = config.with_cores(n_threads)
    run_telemetry = Telemetry()
    ctx = PipelineContext(
        function,
        options={
            "technique": technique,
            "n_threads": n_threads,
            "coco": coco,
            "alias_mode": alias_mode,
            "normalized": False,
            "profile": None,
            "profile_args": train.args,
            "profile_memory": train.memory,
            "local_schedule": local_schedule,
            "mt_check": mt_check,
            "measure_args": measure.args,
            "measure_memory": measure.memory,
            "trace": trace,
            "trace_limit": trace_limit,
            "placer": placer,
            "backend": backend,
            "partitioner_args": dict(partitioner_args)
            if partitioner_args else None,
        },
        config=effective,
        sim_config=config,
        cache=_resolve_cache(cache),
        telemetry=run_telemetry)
    execute(ctx, EVALUATE_STAGES)
    _publish_telemetry(run_telemetry, telemetry)

    st_result = ctx.values["st_result"]
    mt_result = ctx.values["mt_result"]
    if check:
        _check_results(workload, function, st_result, mt_result)
    parallelization = Parallelization(function, ctx.values["profile"],
                                      ctx.values["pdg"],
                                      ctx.values["partition"],
                                      ctx.values["program"],
                                      ctx.values["coco_result"], effective)
    parallelization.fingerprints = dict(ctx.fingerprints)
    parallelization.telemetry = run_telemetry
    evaluation = Evaluation(workload, technique, coco, n_threads,
                            parallelization, st_result, mt_result)
    evaluation.fingerprints = dict(ctx.fingerprints)
    evaluation.telemetry = run_telemetry
    evaluation.trace = ctx.values.get("mt_trace")
    return evaluation


def _check_results(workload: Workload, function: Function,
                   st_result: TimedResult,
                   mt_result: TimedResult) -> None:
    if mt_result.live_outs != st_result.live_outs:
        raise AssertionError(
            "%s: MT live-outs %r != ST %r"
            % (workload.name, mt_result.live_outs, st_result.live_outs))
    if mt_result.memory.snapshot() != st_result.memory.snapshot():
        raise AssertionError("%s: MT memory differs from ST"
                             % workload.name)
