"""Pluggable blob stores behind the artifact cache.

:class:`~repro.pipeline.cache.ArtifactCache` owns envelopes (schema
validation, pickling, the in-process memory tier, hit/miss accounting);
*where the bytes live* is this module's business.  Two implementations
share one small interface:

* :class:`LocalStore` — today's on-disk layout, byte-compatible with
  every cache directory written before the interface existed
  (``<dir>/<stage>/<key[:2]>/<key>.pkl``, atomic temp-file + rename
  writes so parallel sweep workers can share one directory);
* :class:`HttpStore` — a remote store (served by the ``repro serve
  --role coordinator`` daemon under ``/store/<stage>/<key>``) layered
  over a :class:`LocalStore`: reads try the local disk first and fall
  back to an HTTP ``GET``, **replicating** fetched blobs into the local
  store so a cell computed on one cluster node becomes a local cache
  hit everywhere; writes land locally and are pushed with an HTTP
  ``PUT`` (best effort — an unreachable coordinator degrades to
  local-only caching, never fails an evaluation).

Selection is environment-driven so the store survives into ``sweep
--jobs`` / service pool worker processes without widening the pickled
pool payloads: when ``REPRO_STORE_URL`` names a remote store, every
:class:`ArtifactCache` built afterwards (e.g. by
:func:`~repro.pipeline.cache.configure_cache` inside a forked worker)
reads through it.  Cluster worker daemons set the variable from their
``--coordinator`` URL at startup.
"""

from __future__ import annotations

import os
import tempfile
import urllib.error
import urllib.request
from typing import Dict, Optional

#: Store kinds :func:`make_store` understands.
STORES = ("local", "http")

#: Environment variable naming the remote artifact store's base URL
#: (e.g. ``http://coordinator:8184/store``).  Empty/unset = local-only.
STORE_URL_ENV = "REPRO_STORE_URL"

#: Per-request budget for remote store traffic, seconds.  Artifacts are
#: small (pickled stage payloads); a slow coordinator should degrade
#: the read to a recompute, not wedge the evaluation.
REMOTE_TIMEOUT = float(os.environ.get("REPRO_STORE_TIMEOUT", "10") or 10)


class ArtifactStore:
    """The blob interface the cache talks to.

    ``get`` returns the raw envelope bytes or ``None`` on a clean miss
    (any other failure may raise — the cache counts it as an
    invalidation); ``put``/``delete`` are best-effort; ``counters``
    exposes implementation-specific traffic counters for ``/metrics``.
    """

    name = "abstract"

    def get(self, stage: str, key: str) -> Optional[bytes]:
        raise NotImplementedError

    def put(self, stage: str, key: str, blob: bytes) -> None:
        raise NotImplementedError

    def delete(self, stage: str, key: str) -> None:
        raise NotImplementedError

    def counters(self) -> Dict[str, int]:
        return {}


class LocalStore(ArtifactStore):
    """Content-addressed blobs on the local filesystem (the historical
    cache layout, byte-for-byte)."""

    name = "local"

    def __init__(self, directory: str):
        self.directory = directory

    def path(self, stage: str, key: str) -> str:
        return os.path.join(self.directory, stage, key[:2], key + ".pkl")

    def get(self, stage: str, key: str) -> Optional[bytes]:
        try:
            with open(self.path(stage, key), "rb") as handle:
                return handle.read()
        except FileNotFoundError:
            return None

    def put(self, stage: str, key: str, blob: bytes) -> None:
        path = self.path(stage, key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        fd, temp_path = tempfile.mkstemp(dir=os.path.dirname(path),
                                         suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(blob)
            os.replace(temp_path, path)
        except BaseException:
            try:
                os.unlink(temp_path)
            except OSError:
                pass
            raise

    def delete(self, stage: str, key: str) -> None:
        try:
            os.unlink(self.path(stage, key))
        except OSError:
            pass


class HttpStore(ArtifactStore):
    """Remote store with read-through replication into a local tier.

    Counter semantics (all exported under ``/metrics`` ``cache.store``):

    * ``local_hits`` — reads served by the local tier without network;
    * ``remote_hits`` / ``remote_misses`` — remote ``GET`` outcomes for
      blobs the local tier lacked;
    * ``replications`` — remote hits written back into the local store
      (the read-through making cross-node artifacts local);
    * ``remote_stores`` — blobs pushed with ``PUT``;
    * ``remote_errors`` — network/HTTP failures, all degraded to
      local-only behaviour.
    """

    name = "http"

    def __init__(self, remote_url: str, local: LocalStore,
                 timeout: float = REMOTE_TIMEOUT):
        self.remote_url = remote_url.rstrip("/")
        self.local = local
        self.timeout = timeout
        self._counters = {"local_hits": 0, "remote_hits": 0,
                          "remote_misses": 0, "replications": 0,
                          "remote_stores": 0, "remote_errors": 0}

    # LocalStore API compatibility for callers that inspect paths.
    @property
    def directory(self) -> str:
        return self.local.directory

    def path(self, stage: str, key: str) -> str:
        return self.local.path(stage, key)

    def _url(self, stage: str, key: str) -> str:
        return "%s/%s/%s" % (self.remote_url, stage, key)

    def get(self, stage: str, key: str) -> Optional[bytes]:
        blob = self.local.get(stage, key)
        if blob is not None:
            self._counters["local_hits"] += 1
            return blob
        request = urllib.request.Request(self._url(stage, key),
                                         method="GET")
        try:
            with urllib.request.urlopen(request,
                                        timeout=self.timeout) as reply:
                blob = reply.read()
        except urllib.error.HTTPError as error:
            error.close()
            if error.code == 404:
                self._counters["remote_misses"] += 1
            else:
                self._counters["remote_errors"] += 1
            return None
        except Exception:
            self._counters["remote_errors"] += 1
            return None
        self._counters["remote_hits"] += 1
        try:
            self.local.put(stage, key, blob)
            self._counters["replications"] += 1
        except Exception:
            pass  # an unwritable local tier still serves the bytes
        return blob

    def put(self, stage: str, key: str, blob: bytes) -> None:
        self.local.put(stage, key, blob)
        request = urllib.request.Request(
            self._url(stage, key), data=blob, method="PUT",
            headers={"Content-Type": "application/octet-stream"})
        try:
            with urllib.request.urlopen(request,
                                        timeout=self.timeout) as reply:
                reply.read()
        except Exception:
            self._counters["remote_errors"] += 1
            return
        self._counters["remote_stores"] += 1

    def delete(self, stage: str, key: str) -> None:
        # Invalidations are local-only: a corrupt local blob says
        # nothing about the remote copy's health.
        self.local.delete(stage, key)

    def counters(self) -> Dict[str, int]:
        return dict(self._counters)


def store_url_from_env() -> Optional[str]:
    url = os.environ.get(STORE_URL_ENV, "").strip()
    return url or None


def make_store(directory: str,
               store_url: Optional[str] = None) -> ArtifactStore:
    """Build the store for one cache directory: an :class:`HttpStore`
    when a remote URL is given (explicitly or via ``REPRO_STORE_URL``),
    else the plain :class:`LocalStore`."""
    if store_url is None:
        store_url = store_url_from_env()
    local = LocalStore(directory)
    if store_url:
        return HttpStore(store_url, local)
    return local
