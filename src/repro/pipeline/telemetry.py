"""Per-stage telemetry: wall time, cache traffic, and size counters.

Every staged pipeline run records into a :class:`Telemetry` — the
per-run instance attached to the returned ``Parallelization``/
``Evaluation`` and, additionally, the process-global instance rendered by
``python -m repro ... --timings``.  Counters capture the artifact sizes
the papers' cost models revolve around: PDG nodes/edges, channels
inserted, and simulated cycles.

Besides totals, every stage keeps a :class:`LatencyHistogram` of its
per-run wall time — the distribution (not just the sum) is what the
``repro serve`` daemon exports on ``/metrics`` for each pipeline stage
and for whole requests.
"""

from __future__ import annotations

import time
from bisect import bisect_left
from contextlib import contextmanager
from typing import Dict, Iterator, List, Sequence, Tuple

from ..report import table

#: Default latency bucket upper bounds, in seconds (an implicit +inf
#: bucket is always appended).  Spans sub-millisecond cache hits up to
#: multi-second full-methodology evaluations.
DEFAULT_BUCKETS = (0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 30.0)


class LatencyHistogram:
    """A fixed-bucket latency histogram (Prometheus-style, cumulative
    rendering left to consumers).  Buckets are upper bounds in seconds;
    observations beyond the last bound land in the +inf bucket."""

    __slots__ = ("bounds", "counts", "total", "count")

    def __init__(self, bounds: Sequence[float] = DEFAULT_BUCKETS):
        self.bounds: Tuple[float, ...] = tuple(bounds)
        self.counts: List[int] = [0] * (len(self.bounds) + 1)
        self.total = 0.0
        self.count = 0

    def observe(self, seconds: float) -> None:
        self.counts[bisect_left(self.bounds, seconds)] += 1
        self.total += seconds
        self.count += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Approximate quantile: the upper bound of the bucket holding
        the q-th observation (the last finite bound for +inf)."""
        if not self.count:
            return 0.0
        rank = q * self.count
        seen = 0
        for index, bucket_count in enumerate(self.counts):
            seen += bucket_count
            if seen >= rank:
                return (self.bounds[index] if index < len(self.bounds)
                        else self.bounds[-1])
        return self.bounds[-1]

    def merge(self, other: "LatencyHistogram") -> None:
        if other.bounds != self.bounds:  # merge by re-observing bounds
            for bound, bucket_count in zip(
                    tuple(other.bounds) + (other.bounds[-1],),
                    other.counts):
                self.counts[bisect_left(self.bounds, bound)] += bucket_count
        else:
            for index, bucket_count in enumerate(other.counts):
                self.counts[index] += bucket_count
        self.total += other.total
        self.count += other.count

    def to_dict(self) -> Dict[str, object]:
        return {"bounds": list(self.bounds), "counts": list(self.counts),
                "total": self.total, "count": self.count}

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "LatencyHistogram":
        histogram = cls(tuple(data.get("bounds", DEFAULT_BUCKETS)))
        counts = list(data.get("counts", []))
        if len(counts) == len(histogram.counts):
            histogram.counts = [int(value) for value in counts]
        histogram.total = float(data.get("total", 0.0))
        histogram.count = int(data.get("count", 0))
        return histogram

    def __repr__(self) -> str:  # pragma: no cover
        return "<LatencyHistogram %d observations, mean %.4fs>" % (
            self.count, self.mean)


class StageRecord:
    """Accumulated statistics for one named stage."""

    __slots__ = ("name", "runs", "cache_hits", "cache_misses", "seconds")

    def __init__(self, name: str):
        self.name = name
        self.runs = 0
        self.cache_hits = 0
        self.cache_misses = 0
        self.seconds = 0.0

    def __repr__(self) -> str:  # pragma: no cover
        return "<StageRecord %s: %d runs, %d hits, %.3fs>" % (
            self.name, self.runs, self.cache_hits, self.seconds)


class Telemetry:
    """Stage timings + cache accounting + named size counters."""

    def __init__(self) -> None:
        self.stages: Dict[str, StageRecord] = {}
        self.counters: Dict[str, float] = {}
        self.histograms: Dict[str, LatencyHistogram] = {}

    # -- recording ---------------------------------------------------------

    def stage(self, name: str) -> StageRecord:
        record = self.stages.get(name)
        if record is None:
            record = self.stages[name] = StageRecord(name)
        return record

    def histogram(self, name: str) -> LatencyHistogram:
        histogram = self.histograms.get(name)
        if histogram is None:
            histogram = self.histograms[name] = LatencyHistogram()
        return histogram

    def observe(self, name: str, seconds: float) -> None:
        """Record one latency observation into ``name``'s histogram."""
        self.histogram(name).observe(seconds)

    @contextmanager
    def timing(self, name: str) -> Iterator[StageRecord]:
        record = self.stage(name)
        start = time.perf_counter()
        try:
            yield record
        finally:
            record.seconds += time.perf_counter() - start

    def record_run(self, name: str, seconds: float,
                   cache_miss: bool = False) -> None:
        record = self.stage(name)
        record.runs += 1
        record.seconds += seconds
        if cache_miss:
            record.cache_misses += 1
        self.observe(name, seconds)

    def record_hit(self, name: str, seconds: float = 0.0) -> None:
        record = self.stage(name)
        record.cache_hits += 1
        record.seconds += seconds
        self.observe(name, seconds)

    def count(self, name: str, amount: float) -> None:
        self.counters[name] = self.counters.get(name, 0) + amount

    # -- aggregation -------------------------------------------------------

    @property
    def cache_hits(self) -> int:
        return sum(r.cache_hits for r in self.stages.values())

    @property
    def cache_misses(self) -> int:
        return sum(r.cache_misses for r in self.stages.values())

    def merge(self, other: "Telemetry") -> None:
        for name, record in other.stages.items():
            mine = self.stage(name)
            mine.runs += record.runs
            mine.cache_hits += record.cache_hits
            mine.cache_misses += record.cache_misses
            mine.seconds += record.seconds
        for name, amount in other.counters.items():
            self.count(name, amount)
        for name, histogram in other.histograms.items():
            self.histogram(name).merge(histogram)

    # -- serialization -----------------------------------------------------

    def to_dict(self) -> Dict[str, Dict]:
        """JSON-serializable form (the ``BENCH_RESULTS.json`` host
        section); inverse of :meth:`from_dict`."""
        return {
            "stages": {
                record.name: {"runs": record.runs,
                              "cache_hits": record.cache_hits,
                              "cache_misses": record.cache_misses,
                              "seconds": record.seconds}
                for record in self.stages.values()},
            "counters": dict(self.counters),
            "histograms": {name: histogram.to_dict()
                           for name, histogram in self.histograms.items()},
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Dict]) -> "Telemetry":
        telemetry = cls()
        for name, fields in data.get("stages", {}).items():
            record = telemetry.stage(name)
            record.runs = int(fields.get("runs", 0))
            record.cache_hits = int(fields.get("cache_hits", 0))
            record.cache_misses = int(fields.get("cache_misses", 0))
            record.seconds = float(fields.get("seconds", 0.0))
        for name, amount in data.get("counters", {}).items():
            telemetry.count(name, amount)
        for name, fields in data.get("histograms", {}).items():
            telemetry.histograms[name] = LatencyHistogram.from_dict(fields)
        return telemetry

    # -- rendering ---------------------------------------------------------

    def timing_rows(self) -> List[Tuple[str, int, int, int, str]]:
        return [(record.name, record.runs, record.cache_hits,
                 record.cache_misses, "%.4f" % record.seconds)
                for record in self.stages.values()]

    def timings_table(self, title: str = "per-stage timings") -> str:
        rows = self.timing_rows()
        if not rows:
            return title + ": (no stages recorded)"
        return table(["stage", "runs", "hits", "misses", "seconds"],
                     rows, title=title)

    def counters_table(self, title: str = "pipeline counters") -> str:
        rows = [(name, "%.0f" % value)
                for name, value in sorted(self.counters.items())]
        if not rows:
            return title + ": (none)"
        return table(["counter", "total"], rows, title=title)

    def __repr__(self) -> str:  # pragma: no cover
        return "<Telemetry %d stages, %d hits, %d misses>" % (
            len(self.stages), self.cache_hits, self.cache_misses)


_GLOBAL = Telemetry()


def global_telemetry() -> Telemetry:
    """The process-wide accumulator (what ``--timings`` renders)."""
    return _GLOBAL


def reset_global_telemetry() -> Telemetry:
    global _GLOBAL
    _GLOBAL = Telemetry()
    return _GLOBAL
