"""The end-to-end GMT scheduling pipeline, as a staged pass manager.

This package is the *engine room*: the stage graph (normalize, profile,
pdg, partition, coco, mtcg, schedule, simulate-st, simulate-mt) with

* **content-addressed cache keys** per stage (hash of the function's
  textual IR + machine configuration + stage options);
* a **persistent artifact cache** (``REPRO_CACHE_DIR`` or
  ``~/.cache/repro``) shared across processes and sweep runs;
* **per-stage telemetry** (wall time, latency histograms, cache
  hits/misses, PDG/channel/cycle counters) rendered by
  ``python -m repro ... --timings`` and exported by ``repro serve``
  on ``/metrics``;
* a batch engine, :func:`evaluate_matrix`, that fans evaluation cells
  across a ``multiprocessing`` pool (``sweep --jobs N``) and whose
  worker machinery (:func:`pool_payload`/:func:`run_cell_payload`) the
  service worker pool reuses.

Consumers should import the *facade*, :mod:`repro.api` — the high-level
entry points (``parallelize``, ``evaluate_workload``,
``evaluate_matrix``, ``Evaluation``...) are re-exported there with a
stability covenant; importing them from this package still works for
one release behind a ``DeprecationWarning``.

See the submodules: :mod:`.stages` (the pass manager), :mod:`.cache`,
:mod:`.telemetry`, :mod:`.fingerprint`, :mod:`.matrix`, and :mod:`.core`
(the legacy wrappers).
"""

import warnings

from .cache import (ArtifactCache, CacheStats, configure_cache,
                    default_cache_dir, get_cache)
from .store import (ArtifactStore, HttpStore, LocalStore, make_store,
                    STORE_URL_ENV)
from .fingerprint import (digest, fingerprint_config, fingerprint_function,
                          fingerprint_inputs, fingerprint_profile)
from .matrix import MatrixCell, build_cells, pool_payload, run_cell_payload
from .stages import (EVALUATE_STAGES, PARALLELIZE_STAGES, STAGES,
                     PipelineContext, Stage, TECHNIQUES, execute,
                     stage_names)
from .telemetry import (LatencyHistogram, StageRecord, Telemetry,
                        global_telemetry, reset_global_telemetry)

__all__ = [
    # stage graph
    "Stage", "STAGES", "PipelineContext", "execute",
    "PARALLELIZE_STAGES", "EVALUATE_STAGES", "stage_names", "TECHNIQUES",
    # caching
    "ArtifactCache", "CacheStats", "configure_cache", "default_cache_dir",
    "get_cache",
    # blob stores
    "ArtifactStore", "HttpStore", "LocalStore", "make_store",
    "STORE_URL_ENV",
    # fingerprints
    "digest", "fingerprint_config", "fingerprint_function",
    "fingerprint_inputs", "fingerprint_profile",
    # telemetry
    "LatencyHistogram", "StageRecord", "Telemetry", "global_telemetry",
    "reset_global_telemetry",
    # batch machinery
    "MatrixCell", "build_cells", "pool_payload", "run_cell_payload",
]

#: High-level entry points whose supported home is now the
#: :mod:`repro.api` facade.  Kept importable from here for one release.
_DEPRECATED_TO_API = ("Evaluation", "Parallelization",
                      "evaluate_workload", "parallelize",
                      "evaluate_matrix", "make_partitioner", "normalize",
                      "technique_config")


def __getattr__(name):
    if name in _DEPRECATED_TO_API:
        warnings.warn(
            "repro.pipeline.%s is deprecated; import it from repro.api "
            "instead (shim scheduled for removal one release after 1.2)"
            % name, DeprecationWarning, stacklevel=2)
        if name in ("Evaluation", "Parallelization", "evaluate_workload",
                    "parallelize"):
            from . import core
            return getattr(core, name)
        if name == "evaluate_matrix":
            from .matrix import evaluate_matrix
            return evaluate_matrix
        from . import stages
        return getattr(stages, name)
    if name == "_check_results":  # internal; kept for old pickles/tools
        from .core import _check_results
        return _check_results
    raise AttributeError("module %r has no attribute %r"
                         % (__name__, name))


def __dir__():
    return sorted(set(globals()) | set(_DEPRECATED_TO_API))
