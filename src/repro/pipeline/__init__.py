"""The end-to-end GMT scheduling pipeline, as a staged pass manager.

The public surface is unchanged from the original single-module
implementation — ``parallelize()``/``evaluate_workload()`` and friends
import from here exactly as before — but the pipeline now runs as an
explicit stage graph (normalize, profile, pdg, partition, coco, mtcg,
schedule, simulate-st, simulate-mt) with:

* **content-addressed cache keys** per stage (hash of the function's
  textual IR + machine configuration + stage options);
* a **persistent artifact cache** (``REPRO_CACHE_DIR`` or
  ``~/.cache/repro``) shared across processes and sweep runs;
* **per-stage telemetry** (wall time, cache hits/misses, PDG/channel/
  cycle counters) rendered by ``python -m repro ... --timings``;
* a batch API, :func:`evaluate_matrix`, that fans evaluation cells
  across a ``multiprocessing`` pool (``sweep --jobs N``).

See the submodules: :mod:`.stages` (the pass manager), :mod:`.cache`,
:mod:`.telemetry`, :mod:`.fingerprint`, :mod:`.matrix`, and :mod:`.core`
(the legacy wrappers).
"""

from .cache import (ArtifactCache, CacheStats, configure_cache,
                    default_cache_dir, get_cache)
from .core import (Evaluation, Parallelization, _check_results,
                   evaluate_workload, parallelize)
from .fingerprint import (digest, fingerprint_config, fingerprint_function,
                          fingerprint_inputs, fingerprint_profile)
from .matrix import MatrixCell, build_cells, evaluate_matrix
from .stages import (EVALUATE_STAGES, PARALLELIZE_STAGES, STAGES,
                     PipelineContext, Stage, TECHNIQUES, execute,
                     make_partitioner, normalize, stage_names,
                     technique_config)
from .telemetry import (StageRecord, Telemetry, global_telemetry,
                        reset_global_telemetry)

__all__ = [
    # legacy API
    "Evaluation", "Parallelization", "TECHNIQUES", "evaluate_workload",
    "make_partitioner", "normalize", "parallelize", "technique_config",
    # stage graph
    "Stage", "STAGES", "PipelineContext", "execute",
    "PARALLELIZE_STAGES", "EVALUATE_STAGES", "stage_names",
    # caching
    "ArtifactCache", "CacheStats", "configure_cache", "default_cache_dir",
    "get_cache",
    # fingerprints
    "digest", "fingerprint_config", "fingerprint_function",
    "fingerprint_inputs", "fingerprint_profile",
    # telemetry
    "StageRecord", "Telemetry", "global_telemetry",
    "reset_global_telemetry",
    # batch evaluation
    "MatrixCell", "build_cells", "evaluate_matrix",
]
