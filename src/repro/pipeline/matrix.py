"""Batch evaluation: fan a (workload x technique x coco x threads)
matrix across a ``multiprocessing`` pool.

``evaluate_matrix()`` is the sweep engine behind ``python -m repro sweep
--jobs N`` and the benchmark harness.  Cells are evaluated through the
same staged, cached pipeline as single calls, so parallel workers share
the persistent artifact cache (atomic writes make that safe) and results
are bit-identical to serial execution.  Any failure to parallelize —
no ``multiprocessing`` support, unpicklable state, a crashed pool —
degrades gracefully to the serial path.
"""

from __future__ import annotations

import warnings
from typing import Iterable, List, NamedTuple, Optional, Sequence, Union

from ..machine.backend import DEFAULT_BACKEND
from ..workloads import get_workload, workload_names
from ..workloads.common import Workload
from .cache import configure_cache, get_cache
from .core import Evaluation, evaluate_workload
from .telemetry import Telemetry, global_telemetry


class MatrixCell(NamedTuple):
    """One point of the evaluation matrix.

    ``backend`` (last field, after all identity fields) picks the
    simulator implementation; backends are bit-identical, so it is not
    part of the cell's *identity* — :meth:`identity` strips it, and
    request keys/baselines built from it are backend-invariant."""

    workload: str
    technique: str = "gremio"
    coco: bool = False
    n_threads: int = 2
    scale: str = "ref"
    alias_mode: str = "annotated"
    local_schedule: Optional[str] = None
    mt_check: bool = False
    topology: Optional[str] = None
    placer: str = "identity"
    backend: str = DEFAULT_BACKEND

    def identity(self) -> tuple:
        """The fields that determine this cell's results (everything but
        ``backend``) — the key for caches, baselines, and the daemon."""
        return tuple(self[:-1])


def build_cells(workloads: Optional[
                    Iterable[Union[str, Workload]]] = None,
                techniques: Sequence[str] = ("gremio",),
                coco: Sequence[bool] = (False,),
                n_threads: Sequence[int] = (2,),
                scale: str = "ref",
                alias_mode: str = "annotated",
                local_schedule: Optional[str] = None,
                mt_check: bool = False,
                topology: Optional[str] = None,
                placer: str = "identity",
                backend: str = DEFAULT_BACKEND) -> List[MatrixCell]:
    """The cross product, in deterministic workload-major order."""
    if workloads is None:
        names = workload_names()
    else:
        names = [w.name if isinstance(w, Workload) else w
                 for w in workloads]
    return [MatrixCell(name, technique, use_coco, threads, scale,
                       alias_mode, local_schedule, mt_check,
                       topology, placer, backend)
            for name in names
            for technique in techniques
            for use_coco in coco
            for threads in n_threads]


def evaluate_matrix(cells: Optional[Iterable[MatrixCell]] = None,
                    workloads: Optional[
                        Iterable[Union[str, Workload]]] = None,
                    techniques: Sequence[str] = ("gremio",),
                    coco: Sequence[bool] = (False,),
                    n_threads: Sequence[int] = (2,),
                    scale: str = "ref",
                    alias_mode: str = "annotated",
                    local_schedule: Optional[str] = None,
                    mt_check: bool = False,
                    jobs: int = 1,
                    check: bool = True,
                    telemetry: Optional[Telemetry] = None,
                    topology: Optional[str] = None,
                    placer: str = "identity",
                    backend: str = DEFAULT_BACKEND
                    ) -> List[Evaluation]:
    """Evaluate every cell and return the evaluations in cell order.

    Pass explicit ``cells``, or let the (workloads x techniques x coco x
    n_threads) product be built for you.  With ``jobs > 1`` the cells run
    on a ``multiprocessing`` pool; workers share the persistent artifact
    cache, and their telemetry is merged back into the parent, so the
    results — including metrics — are identical to ``jobs=1``.
    """
    if cells is None:
        cells = build_cells(workloads, techniques, coco, n_threads, scale,
                            alias_mode, local_schedule, mt_check,
                            topology, placer, backend)
    cells = [cell if isinstance(cell, MatrixCell) else MatrixCell(*cell)
             for cell in cells]

    results: Optional[List[Evaluation]] = None
    if jobs and jobs > 1 and len(cells) > 1:
        results = _evaluate_pool(cells, jobs, check)
        if results is not None:
            accumulator = global_telemetry()
            for evaluation in results:
                if evaluation.telemetry is not None:
                    accumulator.merge(evaluation.telemetry)
                    if (telemetry is not None
                            and telemetry is not accumulator):
                        telemetry.merge(evaluation.telemetry)
    if results is None:
        results = [_run_cell(cell, check, telemetry) for cell in cells]
    return results


def _run_cell(cell: MatrixCell, check: bool,
              telemetry: Optional[Telemetry]) -> Evaluation:
    return evaluate_workload(get_workload(cell.workload),
                             technique=cell.technique,
                             n_threads=cell.n_threads, coco=cell.coco,
                             scale=cell.scale, check=check,
                             alias_mode=cell.alias_mode,
                             local_schedule=cell.local_schedule,
                             mt_check=cell.mt_check,
                             telemetry=telemetry,
                             topology=cell.topology,
                             placer=cell.placer,
                             backend=cell.backend)


def pool_payload(cell: MatrixCell, check: bool = True,
                 cache=None) -> tuple:
    """The picklable unit of work a pool worker executes: the cell plus
    the parent's cache configuration.  Shared with the ``repro serve``
    worker pool so both fan-outs evaluate cells identically."""
    if cache is None:
        cache = get_cache()
    return (cell, check, cache.directory, cache.enabled)


def run_cell_payload(payload) -> Evaluation:
    """Execute one :func:`pool_payload` in the current process,
    re-pointing the process-wide cache at the parent's directory first
    (a no-op under fork, required under spawn)."""
    cell, check, cache_dir, cache_enabled = payload
    configure_cache(cache_dir, cache_enabled)
    return _run_cell(cell, check, telemetry=None)


# Kept under the historical name: pickled pool entry points must stay
# importable across versions for in-flight spawn workers.
_pool_worker = run_cell_payload


def _run_batch_payload(batch) -> List[Evaluation]:
    return [run_cell_payload(payload) for payload in batch]


def _evaluate_pool(cells: List[MatrixCell], jobs: int,
                   check: bool) -> Optional[List[Evaluation]]:
    payloads = [pool_payload(cell, check) for cell in cells]
    # One batch per workload: cells of a workload share their expensive
    # front-end artifacts (profile, PDG, the single-threaded baseline
    # simulation), and a worker that evaluates them back-to-back reuses
    # those through its in-process cache tier.  Scattering them across
    # workers instead would race the disk tier and compute the shared
    # stages once per worker.
    groups: dict = {}
    for index, cell in enumerate(cells):
        groups.setdefault(cell.workload, []).append(index)
    batches = [[payloads[index] for index in indices]
               for indices in groups.values()]
    try:
        import multiprocessing
        with multiprocessing.Pool(min(jobs, len(batches))) as pool:
            batch_results = pool.map(_run_batch_payload, batches)
    except (AssertionError, KeyboardInterrupt):
        raise  # real evaluation failures / user interrupts propagate
    except Exception as error:
        warnings.warn("parallel evaluation unavailable (%s); "
                      "falling back to serial execution" % (error,),
                      RuntimeWarning)
        return None
    results: List[Optional[Evaluation]] = [None] * len(cells)
    for indices, batch in zip(groups.values(), batch_results):
        for index, evaluation in zip(indices, batch):
            results[index] = evaluation
    return results
