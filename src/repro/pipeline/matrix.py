"""Batch evaluation: fan a (workload x technique x coco x threads)
matrix across a ``multiprocessing`` pool.

``evaluate_matrix()`` is the sweep engine behind ``python -m repro sweep
--jobs N`` and the benchmark harness.  Cells are evaluated through the
same staged, cached pipeline as single calls, so parallel workers share
the persistent artifact cache (atomic writes make that safe) and results
are bit-identical to serial execution.  Any failure to parallelize —
no ``multiprocessing`` support, unpicklable state, a crashed pool —
degrades gracefully to the serial path.

Cells may carry *overrides* — a tuple of namespaced ``(knob, value)``
pairs tweaking the machine model (``machine.comm_latency``) or the
partitioner's cost-model thresholds (``partitioner.split_threshold``).
They are how the ``repro tune`` search driver dispatches candidate
configurations through the same batched, cached evaluation path as
everything else; :func:`validate_overrides` is the single gatekeeper
for the knob namespace.
"""

from __future__ import annotations

import dataclasses
import warnings
from typing import (Dict, Iterable, List, Mapping, NamedTuple, Optional,
                    Sequence, Tuple, Union)

from ..machine.backend import DEFAULT_BACKEND
from ..machine.config import TUNABLE_MACHINE_FIELDS, MachineConfig
from ..workloads import get_workload, workload_names
from ..workloads.common import Workload
from .cache import configure_cache, get_cache
from .core import Evaluation, evaluate_workload
from .stages import PARTITIONER_PARAMS, technique_config
from .telemetry import Telemetry, global_telemetry

Overrides = Tuple[Tuple[str, object], ...]


def validate_overrides(overrides: Iterable[Sequence],
                       technique: str = "gremio") -> Overrides:
    """Check ``(knob, value)`` override pairs against the tunable-knob
    registries and return them as a canonical sorted tuple.

    Knobs are namespaced: ``machine.<field>`` tweaks a whitelisted
    :class:`~repro.machine.config.MachineConfig` field
    (:data:`~repro.machine.config.TUNABLE_MACHINE_FIELDS`);
    ``partitioner.<param>`` forwards a keyword to the technique's
    partitioner (:data:`~repro.pipeline.stages.PARTITIONER_PARAMS`).
    Raises :class:`ValueError` with an actionable message otherwise.
    """
    canonical: Dict[str, object] = {}
    partitioner_params = PARTITIONER_PARAMS.get(technique, ())
    for pair in overrides:
        if len(tuple(pair)) != 2 or not isinstance(pair[0], str):
            raise ValueError(
                "override entries must be (name, value) pairs with a "
                "string name, got %r" % (pair,))
        name, value = pair
        domain, _, field = name.partition(".")
        if domain == "machine":
            if field not in TUNABLE_MACHINE_FIELDS:
                raise ValueError(
                    "unknown machine override %r (tunable machine "
                    "fields: %s)" % (name, ", ".join(
                        sorted(TUNABLE_MACHINE_FIELDS))))
            TUNABLE_MACHINE_FIELDS[field].check(name, value)
        elif domain == "partitioner":
            if field not in partitioner_params:
                raise ValueError(
                    "technique %r does not accept partitioner override "
                    "%r (tunable: %s)"
                    % (technique, name,
                       ", ".join(partitioner_params) or "none"))
            if not isinstance(value, (int, float)) \
                    or isinstance(value, bool) or not value > 0:
                raise ValueError(
                    "partitioner override %r must be a positive number, "
                    "got %r" % (name, value))
        else:
            raise ValueError(
                "unknown override namespace %r in %r (use "
                "'machine.<field>' or 'partitioner.<param>')"
                % (domain, name))
        if name in canonical:
            raise ValueError("duplicate override %r" % (name,))
        canonical[name] = value
    return tuple(sorted(canonical.items()))


def split_overrides(overrides: Optional[Iterable[Sequence]]
                    ) -> Tuple[Dict[str, object], Dict[str, object]]:
    """Partition override pairs into machine-config fields and
    partitioner keyword arguments (names with the namespace stripped)."""
    machine: Dict[str, object] = {}
    partitioner: Dict[str, object] = {}
    for name, value in overrides or ():
        domain, _, field = name.partition(".")
        (machine if domain == "machine" else partitioner)[field] = value
    return machine, partitioner


def overrides_config(technique: str,
                     overrides: Optional[Iterable[Sequence]]
                     ) -> Tuple[Optional[MachineConfig],
                                Optional[Mapping[str, object]]]:
    """Resolve override pairs into the ``(config, partitioner_args)``
    arguments of :func:`~repro.pipeline.core.evaluate_workload`: a
    machine configuration with the overridden fields applied on top of
    the technique's default (or ``None`` when untouched), plus the
    partitioner keyword mapping (or ``None``)."""
    machine, partitioner = split_overrides(overrides)
    config = None
    if machine:
        config = dataclasses.replace(technique_config(technique),
                                     **machine)
    return config, (partitioner or None)


class MatrixCell(NamedTuple):
    """One point of the evaluation matrix.

    ``backend`` picks the simulator implementation; backends are
    bit-identical, so it is not part of the cell's *identity* —
    :meth:`identity` strips it, and request keys/baselines built from
    it are backend-invariant.  ``overrides`` optionally carries
    ``(knob, value)`` pairs (see :func:`validate_overrides`); it *is*
    identity when non-empty, and the empty default keeps the identity
    tuple byte-compatible with pre-override cells."""

    workload: str
    technique: str = "gremio"
    coco: bool = False
    n_threads: int = 2
    scale: str = "ref"
    alias_mode: str = "annotated"
    local_schedule: Optional[str] = None
    mt_check: bool = False
    topology: Optional[str] = None
    placer: str = "identity"
    backend: str = DEFAULT_BACKEND
    overrides: Overrides = ()

    def identity(self) -> tuple:
        """The fields that determine this cell's results (everything but
        ``backend``) — the key for caches, baselines, and the daemon."""
        base = tuple(self[:10])
        if self.overrides:
            return base + (("overrides",
                            tuple(sorted(self.overrides))),)
        return base


def build_cells(workloads: Optional[
                    Iterable[Union[str, Workload]]] = None,
                techniques: Sequence[str] = ("gremio",),
                coco: Sequence[bool] = (False,),
                n_threads: Sequence[int] = (2,),
                scale: str = "ref",
                alias_mode: str = "annotated",
                local_schedule: Optional[str] = None,
                mt_check: bool = False,
                topology: Optional[str] = None,
                placer: str = "identity",
                backend: str = DEFAULT_BACKEND,
                overrides: Overrides = ()) -> List[MatrixCell]:
    """The cross product, in deterministic workload-major order."""
    if workloads is None:
        names = workload_names()
    else:
        names = [w.name if isinstance(w, Workload) else w
                 for w in workloads]
    return [MatrixCell(name, technique, use_coco, threads, scale,
                       alias_mode, local_schedule, mt_check,
                       topology, placer, backend, overrides)
            for name in names
            for technique in techniques
            for use_coco in coco
            for threads in n_threads]


def evaluate_matrix(cells: Optional[Iterable[MatrixCell]] = None,
                    workloads: Optional[
                        Iterable[Union[str, Workload]]] = None,
                    techniques: Sequence[str] = ("gremio",),
                    coco: Sequence[bool] = (False,),
                    n_threads: Sequence[int] = (2,),
                    scale: str = "ref",
                    alias_mode: str = "annotated",
                    local_schedule: Optional[str] = None,
                    mt_check: bool = False,
                    jobs: int = 1,
                    check: bool = True,
                    telemetry: Optional[Telemetry] = None,
                    topology: Optional[str] = None,
                    placer: str = "identity",
                    backend: str = DEFAULT_BACKEND,
                    overrides: Overrides = ()
                    ) -> List[Evaluation]:
    """Evaluate every cell and return the evaluations in cell order.

    Pass explicit ``cells``, or let the (workloads x techniques x coco x
    n_threads) product be built for you.  With ``jobs > 1`` the cells run
    on a ``multiprocessing`` pool; workers share the persistent artifact
    cache, and their telemetry is merged back into the parent, so the
    results — including metrics — are identical to ``jobs=1``.
    """
    if cells is None:
        cells = build_cells(workloads, techniques, coco, n_threads, scale,
                            alias_mode, local_schedule, mt_check,
                            topology, placer, backend, overrides)
    cells = [cell if isinstance(cell, MatrixCell) else MatrixCell(*cell)
             for cell in cells]

    results: Optional[List[Evaluation]] = None
    if jobs and jobs > 1 and len(cells) > 1:
        results = _evaluate_pool(cells, jobs, check)
        if results is not None:
            accumulator = global_telemetry()
            for evaluation in results:
                if evaluation.telemetry is not None:
                    accumulator.merge(evaluation.telemetry)
                    if (telemetry is not None
                            and telemetry is not accumulator):
                        telemetry.merge(evaluation.telemetry)
    if results is None:
        results = [_run_cell(cell, check, telemetry) for cell in cells]
    return results


def _run_cell(cell: MatrixCell, check: bool,
              telemetry: Optional[Telemetry]) -> Evaluation:
    config, partitioner_args = overrides_config(cell.technique,
                                                cell.overrides)
    return evaluate_workload(get_workload(cell.workload),
                             technique=cell.technique,
                             n_threads=cell.n_threads, coco=cell.coco,
                             scale=cell.scale, config=config, check=check,
                             alias_mode=cell.alias_mode,
                             local_schedule=cell.local_schedule,
                             mt_check=cell.mt_check,
                             telemetry=telemetry,
                             topology=cell.topology,
                             placer=cell.placer,
                             backend=cell.backend,
                             partitioner_args=partitioner_args)


def pool_payload(cell: MatrixCell, check: bool = True,
                 cache=None) -> tuple:
    """The picklable unit of work a pool worker executes: the cell plus
    the parent's cache configuration.  Shared with the ``repro serve``
    worker pool so both fan-outs evaluate cells identically."""
    if cache is None:
        cache = get_cache()
    return (cell, check, cache.directory, cache.enabled)


def run_cell_payload(payload) -> Evaluation:
    """Execute one :func:`pool_payload` in the current process,
    re-pointing the process-wide cache at the parent's directory first
    (a no-op under fork, required under spawn)."""
    cell, check, cache_dir, cache_enabled = payload
    configure_cache(cache_dir, cache_enabled)
    return _run_cell(cell, check, telemetry=None)


# Kept under the historical name: pickled pool entry points must stay
# importable across versions for in-flight spawn workers.
_pool_worker = run_cell_payload


def _run_batch_payload(batch) -> List[Evaluation]:
    return [run_cell_payload(payload) for payload in batch]


def _evaluate_pool(cells: List[MatrixCell], jobs: int,
                   check: bool) -> Optional[List[Evaluation]]:
    payloads = [pool_payload(cell, check) for cell in cells]
    # One batch per workload: cells of a workload share their expensive
    # front-end artifacts (profile, PDG, the single-threaded baseline
    # simulation), and a worker that evaluates them back-to-back reuses
    # those through its in-process cache tier.  Scattering them across
    # workers instead would race the disk tier and compute the shared
    # stages once per worker.
    groups: dict = {}
    for index, cell in enumerate(cells):
        groups.setdefault(cell.workload, []).append(index)
    batches = [[payloads[index] for index in indices]
               for indices in groups.values()]
    try:
        import multiprocessing
        with multiprocessing.Pool(min(jobs, len(batches))) as pool:
            batch_results = pool.map(_run_batch_payload, batches)
    except (AssertionError, KeyboardInterrupt):
        raise  # real evaluation failures / user interrupts propagate
    except Exception as error:
        warnings.warn("parallel evaluation unavailable (%s); "
                      "falling back to serial execution" % (error,),
                      RuntimeWarning)
        return None
    results: List[Optional[Evaluation]] = [None] * len(cells)
    for indices, batch in zip(groups.values(), batch_results):
        for index, evaluation in zip(indices, batch):
            results[index] = evaluation
    return results
