"""Persistent on-disk artifact cache for pipeline stages.

Artifacts are pickle blobs keyed by (stage name, content fingerprint) —
see :mod:`repro.pipeline.fingerprint`.  The cache directory defaults to
``~/.cache/repro`` and is overridden by the ``REPRO_CACHE_DIR``
environment variable; ``REPRO_CACHE=0`` (or ``off``/``no``) disables the
cache entirely.  Writes are atomic (write-to-temp + rename), so parallel
sweep workers can share one directory safely.

In front of the disk sits a bounded in-process LRU of *encoded* envelope
bytes (``REPRO_CACHE_MEMORY_BUDGET`` bytes, default 128 MiB, 0 disables):
sweep cells that share an artifact — e.g. four partitioner/topology
variants of one workload reusing its profile and PDG — then pay one
``pickle.loads`` instead of a disk round-trip.  Bytes, not objects, are
cached because stages mutate their payloads in place (the local
scheduler reorders instruction lists); every hit deserializes a fresh
object graph.  Memory hits count as ordinary hits plus ``memory_hits``.

Blob I/O is delegated to a pluggable :class:`~repro.pipeline.store.
ArtifactStore`: by default the historical on-disk layout
(:class:`~repro.pipeline.store.LocalStore`), or — when
``REPRO_STORE_URL`` names a coordinator — a read-through
:class:`~repro.pipeline.store.HttpStore` that replicates remote blobs
into the local tier so a cell computed on one cluster node is a cache
hit everywhere.

The cache is best-effort by design: a missing, corrupted, or truncated
blob is counted as an invalidation and recomputed, never raised.
"""

from __future__ import annotations

import os
import pickle
import shutil
import time
from collections import OrderedDict
from typing import Any, Dict, Optional, Tuple

from .fingerprint import SCHEMA_VERSION
from .store import ArtifactStore, make_store

_DISABLE_VALUES = ("0", "off", "no", "false")

DEFAULT_MEMORY_BUDGET = 128 * 1024 * 1024


def _default_memory_budget() -> int:
    raw = os.environ.get("REPRO_CACHE_MEMORY_BUDGET")
    if raw is None:
        return DEFAULT_MEMORY_BUDGET
    try:
        return max(int(raw), 0)
    except ValueError:
        return DEFAULT_MEMORY_BUDGET


class CacheStats:
    """Hit/miss/invalidation accounting for one cache instance.

    ``memory_hits`` counts the subset of ``hits`` served from the
    in-process memory tier without touching the disk."""

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0
        self.invalidations = 0
        self.stores = 0
        self.memory_hits = 0

    def reset(self) -> None:
        self.hits = self.misses = self.invalidations = self.stores = 0
        self.memory_hits = 0

    def as_dict(self) -> Dict[str, int]:
        return {"hits": self.hits, "misses": self.misses,
                "invalidations": self.invalidations, "stores": self.stores,
                "memory_hits": self.memory_hits}

    def summary(self) -> str:
        return ("%d hits (%d from memory), %d misses, %d invalidations, "
                "%d stores"
                % (self.hits, self.memory_hits, self.misses,
                   self.invalidations, self.stores))

    def __repr__(self) -> str:  # pragma: no cover
        return "<CacheStats %s>" % self.summary()


def default_cache_dir() -> str:
    return (os.environ.get("REPRO_CACHE_DIR")
            or os.path.join(os.path.expanduser("~"), ".cache", "repro"))


class ArtifactCache:
    """Content-addressed pickle store with per-stage subdirectories."""

    def __init__(self, directory: Optional[str] = None,
                 enabled: Optional[bool] = None,
                 memory_budget: Optional[int] = None,
                 store: Optional[ArtifactStore] = None):
        if enabled is None:
            enabled = (os.environ.get("REPRO_CACHE", "1").lower()
                       not in _DISABLE_VALUES)
        self.directory = directory or default_cache_dir()
        self.enabled = enabled
        self.store_backend = store or make_store(self.directory)
        self.stats = CacheStats()
        if memory_budget is None:
            memory_budget = _default_memory_budget()
        self.memory_budget = max(int(memory_budget), 0)
        self._memory: "OrderedDict[Tuple[str, str], bytes]" = OrderedDict()
        self._memory_bytes = 0

    # -- lookup ------------------------------------------------------------

    def load(self, stage: str, key: str) -> Tuple[bool, Any]:
        """Return ``(hit, payload)``.  Any I/O or unpickling failure is a
        miss (corrupt blobs additionally count as invalidations and are
        removed); a disabled cache always misses without accounting."""
        hit, payload, _meta = self.load_with_meta(stage, key)
        return hit, payload

    def load_with_meta(self, stage: str,
                       key: str) -> Tuple[bool, Any, Dict[str, Any]]:
        """Like :meth:`load`, but also return envelope metadata — today
        just ``stored_at`` (epoch seconds; 0.0 for pre-metadata blobs).
        The ``repro serve`` daemon uses it to report the age of stale
        artifacts served after an evaluation timeout."""
        if not self.enabled:
            return False, None, {}
        mem_key = (stage, key)
        blob = self._memory.get(mem_key)
        if blob is not None:
            envelope = self._decode(blob, stage)
            if envelope is not None:
                self._memory.move_to_end(mem_key)
                self.stats.hits += 1
                self.stats.memory_hits += 1
                meta = {"stored_at": float(envelope.get("stored_at", 0.0))}
                return True, envelope["payload"], meta
            self._memory_drop(mem_key)
        try:
            blob = self.store_backend.get(stage, key)
        except Exception:
            self._invalidate(stage, key)
            return False, None, {}
        if blob is None:
            self.stats.misses += 1
            return False, None, {}
        envelope = self._decode(blob, stage)
        if envelope is None:
            self._invalidate(stage, key)
            return False, None, {}
        self.stats.hits += 1
        self._memory_put(mem_key, blob)
        meta = {"stored_at": float(envelope.get("stored_at", 0.0))}
        return True, envelope["payload"], meta

    def store(self, stage: str, key: str, payload: Any) -> None:
        """Atomically persist ``payload`` under (stage, key)."""
        if not self.enabled:
            return
        envelope = {"schema": SCHEMA_VERSION, "stage": stage, "key": key,
                    "stored_at": time.time(), "payload": payload}
        try:
            blob = pickle.dumps(envelope, protocol=pickle.HIGHEST_PROTOCOL)
        except Exception:
            return  # unpicklable payloads are simply not cached
        self._memory_put((stage, key), blob)
        try:
            self.store_backend.put(stage, key, blob)
        except Exception:
            return  # best effort: an unwritable cache never fails the run
        self.stats.stores += 1

    def drop_memory(self) -> None:
        """Empty the in-process memory tier (the disk is untouched).
        Tests use this to model a fresh process against a shared disk."""
        self._memory.clear()
        self._memory_bytes = 0

    def clear(self) -> None:
        self.drop_memory()
        shutil.rmtree(self.directory, ignore_errors=True)

    def store_counters(self) -> Dict[str, int]:
        """Blob-store traffic counters (empty for the plain local store;
        remote hit/replication counters for an ``http`` store)."""
        return self.store_backend.counters()

    # -- internals ---------------------------------------------------------

    def _path(self, stage: str, key: str) -> str:
        return self.store_backend.path(stage, key)

    def _decode(self, blob: bytes, stage: str) -> Optional[Dict[str, Any]]:
        """Unpickle and validate an envelope; ``None`` on any mismatch."""
        try:
            envelope = pickle.loads(blob)
        except Exception:
            return None
        if (not isinstance(envelope, dict)
                or envelope.get("schema") != SCHEMA_VERSION
                or envelope.get("stage") != stage
                or "payload" not in envelope):
            return None
        return envelope

    def _memory_put(self, mem_key: Tuple[str, str], blob: bytes) -> None:
        if not self.memory_budget or len(blob) > self.memory_budget:
            return
        self._memory_drop(mem_key)
        self._memory[mem_key] = blob
        self._memory_bytes += len(blob)
        while self._memory_bytes > self.memory_budget:
            _evicted, old = self._memory.popitem(last=False)
            self._memory_bytes -= len(old)

    def _memory_drop(self, mem_key: Tuple[str, str]) -> None:
        blob = self._memory.pop(mem_key, None)
        if blob is not None:
            self._memory_bytes -= len(blob)

    def _invalidate(self, stage: str, key: str) -> None:
        self.stats.invalidations += 1
        self.stats.misses += 1
        try:
            self.store_backend.delete(stage, key)
        except Exception:
            pass

    def __repr__(self) -> str:  # pragma: no cover
        return "<ArtifactCache %s (%s): %s>" % (
            self.directory, "on" if self.enabled else "off",
            self.stats.summary())


_ACTIVE: Optional[ArtifactCache] = None


def get_cache() -> ArtifactCache:
    """The process-wide cache used when a run does not pass its own."""
    global _ACTIVE
    if _ACTIVE is None:
        _ACTIVE = ArtifactCache()
    return _ACTIVE


def configure_cache(directory: Optional[str] = None,
                    enabled: Optional[bool] = None,
                    memory_budget: Optional[int] = None) -> ArtifactCache:
    """Replace the process-wide cache (e.g. per-test tmp directories, or
    ``--no-cache`` from the CLI) and return the new instance."""
    global _ACTIVE
    _ACTIVE = ArtifactCache(directory, enabled, memory_budget)
    return _ACTIVE
