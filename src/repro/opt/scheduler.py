"""Local (block-level) instruction scheduling.

The papers' toolchain runs a single-threaded instruction scheduler after
MT code generation, and the companion text reports that COCO's placements
can interact badly with it — proposing to tune the *priority of produce
and consume instructions* in that scheduler.  This pass reproduces that
stage: a latency-weighted list scheduler that reorders instructions within
each basic block on an in-order machine, with a configurable bias for
communication operations.

Dependences respected within a block:

* register true/anti/output dependences;
* the relative order of all memory operations (no memory disambiguation
  at this level — conservative, like a late machine-level scheduler);
* the relative order of all communication operations (their cross-thread
  pairing relies on consistent per-point ordering, and produce/consume
  share the bounded synchronization array);
* memory and communication operations do not move across each other
  (produce.sync/consume.sync carry release/acquire semantics);
* the terminator stays last.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..ir.cfg import BasicBlock, Function
from ..ir.instructions import Instruction
from ..machine.config import DEFAULT_CONFIG, MachineConfig


class CommPriority:
    """How eagerly to schedule produce/consume operations."""

    EARLY = "early"    # hoist communication as early as dependences allow
    LATE = "late"      # sink communication as late as possible
    NEUTRAL = "neutral"


def schedule_function(function: Function,
                      config: MachineConfig = DEFAULT_CONFIG,
                      comm_priority: str = CommPriority.EARLY) -> int:
    """Schedule every block; returns how many instructions moved."""
    moved = 0
    for block in function.blocks:
        moved += _schedule_block(block, config, comm_priority)
    return moved


def _schedule_block(block: BasicBlock, config: MachineConfig,
                    comm_priority: str) -> int:
    body = block.body
    terminator = block.terminator
    if len(body) < 2:
        return 0

    predecessors = _dependence_edges(body, terminator)

    # Priority: longest latency path to the end of the block (critical
    # path), with the communication bias layered on top.
    n = len(body)
    successors: Dict[int, List[int]] = {i: [] for i in range(n)}
    for target, sources in predecessors.items():
        for source in sources:
            successors[source].append(target)
    height: List[float] = [0.0] * n
    for index in reversed(range(n)):
        follow = max((height[s] for s in successors[index]), default=0.0)
        height[index] = config.latency_of(body[index]) + follow

    bias: List[float] = [0.0] * n
    for index, instruction in enumerate(body):
        if instruction.is_communication():
            if comm_priority == CommPriority.EARLY:
                bias[index] = 1e6
            elif comm_priority == CommPriority.LATE:
                bias[index] = -1e6

    in_degree = [0] * n
    for target, sources in predecessors.items():
        in_degree[target] = len(sources)
    ready = [i for i in range(n) if in_degree[i] == 0]
    order: List[int] = []
    while ready:
        # Highest priority first; program order breaks ties (stable).
        ready.sort(key=lambda i: (-(height[i] + bias[i]), i))
        chosen = ready.pop(0)
        order.append(chosen)
        for succ in successors[chosen]:
            in_degree[succ] -= 1
            if in_degree[succ] == 0:
                ready.append(succ)
    assert len(order) == n, "scheduling dropped instructions"

    new_body = [body[i] for i in order]
    moved = sum(1 for i, instruction in enumerate(new_body)
                if instruction is not body[i])
    block.instructions = new_body + ([terminator] if terminator else [])
    return moved


def _dependence_edges(body: Sequence[Instruction],
                      terminator: Optional[Instruction]
                      ) -> Dict[int, List[int]]:
    """Intra-block scheduling dependences: target index -> source indices.
    """
    predecessors: Dict[int, List[int]] = {i: [] for i in range(len(body))}
    last_def: Dict[str, int] = {}
    last_uses: Dict[str, List[int]] = {}
    last_side_effect: Optional[int] = None  # memory or communication op

    for index, instruction in enumerate(body):
        sources = set()
        for register in instruction.used_registers():
            if register in last_def:
                sources.add(last_def[register])          # true dependence
        dest = instruction.dest
        if dest is not None:
            if dest in last_def:
                sources.add(last_def[dest])              # output dependence
            for user in last_uses.get(dest, ()):
                if user != index:
                    sources.add(user)                    # anti dependence
        if instruction.is_memory() or instruction.is_communication():
            if last_side_effect is not None:
                sources.add(last_side_effect)            # ordered class
            last_side_effect = index
        predecessors[index] = sorted(sources)

        for register in instruction.used_registers():
            last_uses.setdefault(register, []).append(index)
        if dest is not None:
            last_def[dest] = index
            last_uses[dest] = []
    return predecessors


def schedule_program(program, config: MachineConfig = DEFAULT_CONFIG,
                     comm_priority: str = CommPriority.EARLY) -> int:
    """Schedule every thread of an :class:`~repro.mtcg.program.MTProgram`.
    """
    moved = 0
    for thread_function in program.threads:
        moved += schedule_function(thread_function, config, comm_priority)
    return moved
