"""Classical scalar optimizations.

The papers' compiler (VELOCITY) runs "all traditional code optimizations"
before global MT scheduling; this package provides the subset that matters
for the mini-IR front-ends: local constant folding/propagation, local copy
propagation, global dead-code elimination, jump threading, and unreachable
block removal.  The pipeline runs them before profiling, so the PDG the
partitioners see is free of trivially-removable dependences.

All passes preserve iids of surviving instructions and the structural
invariants checked by the verifier; `optimize_function` iterates them to a
fixed point.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from ..analysis.liveness import liveness
from ..interp.context import _BINARY, _UNARY  # evaluation semantics
from ..ir.cfg import Function
from ..ir.instructions import Instruction, OpKind, Opcode


def fold_constants(function: Function) -> int:
    """Local constant propagation + folding.

    Within each block, track registers with known constant values (reset
    at block entry — no cross-block assumptions) and rewrite instructions
    whose operands are all known into ``movi``.  Returns the number of
    instructions rewritten.
    """
    rewritten = 0
    for block in function.blocks:
        constants: Dict[str, object] = {}
        for instruction in block:
            value = _try_evaluate(instruction, constants)
            if value is not None and instruction.op is not Opcode.MOVI:
                instruction.op = Opcode.MOVI
                instruction.srcs = ()
                instruction.imm = value
                rewritten += 1
            # Update the constant environment.
            if instruction.dest is not None:
                if instruction.op is Opcode.MOVI:
                    constants[instruction.dest] = instruction.imm
                else:
                    constants.pop(instruction.dest, None)
    return rewritten


def _try_evaluate(instruction: Instruction,
                  constants: Dict[str, object]) -> Optional[object]:
    """Evaluate an ALU/FP instruction whose inputs are all constant."""
    if instruction.kind not in (OpKind.ALU, OpKind.FP):
        return None
    if instruction.op in (Opcode.MOVI, Opcode.IDIV, Opcode.IMOD,
                          Opcode.FDIV):
        return None  # divisions might trap; leave them alone
    operands: List[object] = []
    for register in instruction.srcs:
        if register not in constants:
            return None
        operands.append(constants[register])
    if instruction.imm is not None:
        operands.append(instruction.imm)
    handler = _BINARY.get(instruction.op)
    if handler is not None and len(operands) == 2:
        try:
            return handler(operands[0], operands[1])
        except Exception:
            return None
    handler = _UNARY.get(instruction.op)
    if handler is not None and len(operands) == 1:
        try:
            return handler(operands[0])
        except Exception:
            return None
    return None


def propagate_copies(function: Function) -> int:
    """Local copy propagation: after ``mov d, s``, uses of ``d`` read ``s``
    directly until either register is redefined.  Returns replacements."""
    replaced = 0
    for block in function.blocks:
        copies: Dict[str, str] = {}  # dest -> original source
        for instruction in block:
            if instruction.srcs:
                new_srcs = tuple(copies.get(register, register)
                                 for register in instruction.srcs)
                if new_srcs != instruction.srcs:
                    replaced += sum(1 for a, b in zip(new_srcs,
                                                      instruction.srcs)
                                    if a != b)
                    instruction.srcs = new_srcs
            dest = instruction.dest
            if dest is not None:
                # Any copy involving the redefined register dies.
                copies = {d: s for d, s in copies.items()
                          if d != dest and s != dest}
                if instruction.op is Opcode.MOV \
                        and instruction.srcs[0] != dest:
                    copies[dest] = instruction.srcs[0]
    return replaced


def eliminate_dead_code(function: Function) -> int:
    """Global DCE: remove side-effect-free instructions whose results are
    dead (liveness-based, so loop-carried uses are respected)."""
    live = liveness(function)
    removed = 0
    for block in function.blocks:
        kept: List[Instruction] = []
        for instruction in block:
            if _has_side_effects(instruction):
                kept.append(instruction)
                continue
            dest = instruction.dest
            if dest is not None and dest not in live.live_out.get(
                    instruction.iid, frozenset()):
                removed += 1
                continue
            kept.append(instruction)
        block.instructions = kept
    return removed


def _has_side_effects(instruction: Instruction) -> bool:
    if instruction.dest is None:
        return True  # stores, branches, produces, exit, nop...
    return instruction.is_memory() or instruction.is_communication() \
        or instruction.is_terminator()


def thread_jumps(function: Function) -> int:
    """Jump threading: retarget branches/jumps whose target block is just
    a single ``jmp`` to somewhere else (skipping the trampoline).  Leaves
    the now-possibly-unreachable trampolines for
    :func:`remove_unreachable_blocks`.  Critical-edge split blocks are
    exactly such trampolines, so this pass must only run *before*
    normalization (the pipeline orders them correctly)."""
    forwards: Dict[str, str] = {}
    for block in function.blocks:
        if len(block.instructions) == 1 \
                and block.instructions[0].op is Opcode.JMP:
            forwards[block.label] = block.instructions[0].labels[0]

    def resolve(label: str) -> str:
        seen = set()
        while label in forwards and label not in seen:
            seen.add(label)
            label = forwards[label]
        return label

    changed = 0
    for block in function.blocks:
        terminator = block.terminator
        if terminator is None or not terminator.labels:
            continue
        new_labels = tuple(resolve(label) for label in terminator.labels)
        if new_labels != terminator.labels:
            terminator.labels = new_labels
            changed += 1
    return changed


def remove_unreachable_blocks(function: Function) -> int:
    """Drop blocks unreachable from the entry."""
    reachable: Set[str] = set()
    stack = [function.entry.label]
    while stack:
        label = stack.pop()
        if label in reachable:
            continue
        reachable.add(label)
        stack.extend(function.block(label).successors())
    removed = [block for block in function.blocks
               if block.label not in reachable]
    if not removed:
        return 0
    function.blocks = [block for block in function.blocks
                       if block.label in reachable]
    for block in removed:
        del function._by_label[block.label]
    return len(removed)


def optimize_function(function: Function, max_rounds: int = 8) -> Dict[str, int]:
    """Run all passes to a fixed point; returns per-pass change counts."""
    totals = {"folded": 0, "copies": 0, "dce": 0, "jumps": 0,
              "unreachable": 0}
    for _ in range(max_rounds):
        changed = 0
        changed += _accumulate(totals, "jumps", thread_jumps(function))
        changed += _accumulate(totals, "unreachable",
                               remove_unreachable_blocks(function))
        changed += _accumulate(totals, "folded", fold_constants(function))
        changed += _accumulate(totals, "copies",
                               propagate_copies(function))
        changed += _accumulate(totals, "dce",
                               eliminate_dead_code(function))
        if not changed:
            break
    return totals


def _accumulate(totals: Dict[str, int], key: str, count: int) -> int:
    totals[key] += count
    return count
