"""Classical scalar optimizations run before GMT scheduling."""

from .passes import (eliminate_dead_code, fold_constants, optimize_function,
                     propagate_copies, remove_unreachable_blocks,
                     thread_jumps)
from .regalloc import RegAllocError, RegAllocResult, allocate_registers
from .scheduler import CommPriority, schedule_function, schedule_program

__all__ = [
    "eliminate_dead_code", "fold_constants", "optimize_function",
    "propagate_copies", "remove_unreachable_blocks", "thread_jumps",
    "RegAllocError", "RegAllocResult", "allocate_registers",
    "CommPriority", "schedule_function", "schedule_program",
]
