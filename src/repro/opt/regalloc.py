"""Register allocation (linear scan with spilling).

The papers' toolchain runs register allocation after MT scheduling (each
generated thread is allocated independently, like any function).  This
pass reproduces that stage for the mini-IR: a classic Poletto-Sarkar
linear-scan allocator over conservative live intervals, with spill code
against a dedicated per-function spill area in memory.

Design notes:

* virtual registers that receive a physical home keep their names (the
  physical id lives in the returned assignment — the IR is name-based,
  and downstream consumers key on names); what changes the code is
  *spilling*: spilled registers are rewritten to loads/stores against the
  spill area through reserved scratch registers;
* the spill area is a new memory object plus a pointer parameter; pointer
  parameters bind automatically at run time, so callers need no changes;
* three scratch registers are reserved out of the physical file for spill
  reload/store sequences (an instruction touches at most two spilled
  sources and one spilled destination).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from ..analysis.liveness import liveness
from ..ir.cfg import Function
from ..ir.instructions import Instruction, Opcode

SCRATCH = ("r__s0", "r__s1", "r__s2")


class RegAllocError(Exception):
    pass


class Interval:
    __slots__ = ("register", "start", "end")

    def __init__(self, register: str, start: int, end: int):
        self.register = register
        self.start = start
        self.end = end

    def __repr__(self) -> str:  # pragma: no cover
        return "<%s [%d,%d]>" % (self.register, self.start, self.end)


class RegAllocResult:
    """Outcome: physical assignment, spill set, and pressure statistics."""

    def __init__(self, assignment: Dict[str, int], spilled: Dict[str, int],
                 n_physical: int, max_pressure_before: int,
                 spill_loads: int, spill_stores: int):
        self.assignment = assignment      # register -> physical id
        self.spilled = spilled            # register -> spill slot
        self.n_physical = n_physical
        self.max_pressure_before = max_pressure_before
        self.spill_loads = spill_loads
        self.spill_stores = spill_stores

    @property
    def spill_count(self) -> int:
        return len(self.spilled)

    def __repr__(self) -> str:  # pragma: no cover
        return "<RegAlloc %d regs -> %d physical, %d spilled>" % (
            len(self.assignment) + len(self.spilled), self.n_physical,
            len(self.spilled))


def _intervals(function: Function) -> Tuple[List[Interval], int]:
    """Conservative live intervals over the layout order, plus the peak
    simultaneous liveness (max pressure)."""
    live = liveness(function)
    first: Dict[str, int] = {}
    last: Dict[str, int] = {}
    position = 0
    max_pressure = 0
    for param in function.params:
        first[param] = 0
        last[param] = 0
    for block in function.blocks:
        for instruction in block:
            for register in live.live_in.get(instruction.iid, ()):
                first.setdefault(register, position)
                last[register] = max(last.get(register, position), position)
            out_set = live.live_out.get(instruction.iid, frozenset())
            for register in out_set:
                first.setdefault(register, position)
                last[register] = max(last.get(register, position),
                                     position + 1)
            for register in instruction.defined_registers():
                first.setdefault(register, position)
                last[register] = max(last.get(register, position),
                                     position + 1)
            for register in instruction.used_registers():
                first.setdefault(register, position)
                last[register] = max(last.get(register, position), position)
            max_pressure = max(
                max_pressure,
                len(live.live_in.get(instruction.iid, frozenset())))
            position += 2
    intervals = [Interval(register, first[register], last[register])
                 for register in sorted(first)]
    intervals.sort(key=lambda interval: (interval.start, interval.end,
                                         interval.register))
    return intervals, max_pressure


def _linear_scan(intervals: List[Interval], n_available: int,
                 pinned: Set[str]) -> Tuple[Dict[str, int], List[str]]:
    """Poletto-Sarkar linear scan.  ``pinned`` registers (parameters —
    they arrive in registers) are never spilled."""
    assignment: Dict[str, int] = {}
    active: List[Interval] = []
    free = list(range(n_available))
    spilled: List[str] = []

    for interval in intervals:
        active = [a for a in active if a.end > interval.start
                  or _release(a, assignment, free)]
        if free:
            assignment[interval.register] = free.pop(0)
            active.append(interval)
            active.sort(key=lambda a: a.end)
            continue
        # Spill the interval that ends furthest in the future.
        candidates = [a for a in active if a.register not in pinned]
        victim = None
        if candidates and interval.register not in pinned:
            victim = max(candidates + [interval], key=lambda a: a.end)
        elif candidates:
            victim = max(candidates, key=lambda a: a.end)
        elif interval.register not in pinned:
            victim = interval
        if victim is None:
            raise RegAllocError("cannot allocate: every live register "
                                "is pinned")
        if victim is interval:
            spilled.append(interval.register)
            continue
        assignment[interval.register] = assignment.pop(victim.register)
        spilled.append(victim.register)
        active.remove(victim)
        active.append(interval)
        active.sort(key=lambda a: a.end)
    return assignment, spilled


def _release(interval: Interval, assignment: Dict[str, int],
             free: List[int]) -> bool:
    free.append(assignment[interval.register])
    free.sort()
    return False


def allocate_registers(function: Function, n_physical: int = 128,
                       spill_object: Optional[str] = None
                       ) -> RegAllocResult:
    """Allocate ``function``'s virtual registers to ``n_physical`` homes,
    inserting spill code as needed (mutates the function)."""
    if n_physical <= len(SCRATCH) + 1:
        raise RegAllocError("need more than %d physical registers"
                            % (len(SCRATCH) + 1))
    intervals, max_pressure = _intervals(function)
    # Parameters are spillable too: they arrive in registers and are
    # stored to their slot at entry (below).  Nothing is pinned.
    assignment, spill_list = _linear_scan(
        intervals, n_physical - len(SCRATCH), pinned=set())

    spilled: Dict[str, int] = {register: slot
                               for slot, register in enumerate(spill_list)}
    loads = stores = 0
    if spilled:
        if spill_object is None:
            spill_object = "__spill_%s" % function.name
        pointer = "p%s" % spill_object
        function.add_mem_object(spill_object, max(len(spilled), 1),
                                pointer_param=pointer)
        function.params.append(pointer)
        loads, stores = _rewrite_spills(function, spilled, pointer,
                                        spill_object)
    return RegAllocResult(assignment, spilled, n_physical, max_pressure,
                          loads, stores)


def _rewrite_spills(function: Function, spilled: Dict[str, int],
                    pointer: str, region: str) -> Tuple[int, int]:
    loads = stores = 0
    # Spilled parameters: their incoming value is parked in the spill
    # area on entry (the only point where the register surely holds it).
    entry_stores: List[Instruction] = []
    for register in function.params:
        if register in spilled:
            store = Instruction(Opcode.STORE, None, [pointer, register],
                                spilled[register], region=region)
            function.assign_iid(store)
            entry_stores.append(store)
            stores += 1
    # (Prepended after the rewrite pass below, so they are not themselves
    # rewritten: they read the parameter register directly, which is only
    # guaranteed live at the very top of the function.)
    for block in function.blocks:
        rewritten: List[Instruction] = []
        for instruction in block:
            scratch_map: Dict[str, str] = {}
            if instruction.op is Opcode.EXIT:
                # Live-out values escape through their original register
                # names: reload any spilled live-out before leaving.
                for register in function.live_outs:
                    if register in spilled:
                        reload = Instruction(Opcode.LOAD, register,
                                             [pointer], spilled[register],
                                             region=region)
                        function.assign_iid(reload)
                        rewritten.append(reload)
                        loads += 1
            # Reload spilled sources into scratch registers.
            for register in dict.fromkeys(instruction.srcs):
                if register in spilled and register not in scratch_map:
                    scratch = SCRATCH[len(scratch_map)]
                    scratch_map[register] = scratch
                    reload = Instruction(Opcode.LOAD, scratch, [pointer],
                                         spilled[register], region=region)
                    function.assign_iid(reload)
                    rewritten.append(reload)
                    loads += 1
            if scratch_map:
                instruction.srcs = tuple(scratch_map.get(r, r)
                                         for r in instruction.srcs)
            dest = instruction.dest
            if dest is not None and dest in spilled:
                instruction.dest = SCRATCH[-1]
                rewritten.append(instruction)
                store = Instruction(Opcode.STORE, None,
                                    [pointer, SCRATCH[-1]],
                                    spilled[dest], region=region)
                function.assign_iid(store)
                rewritten.append(store)
                stores += 1
            else:
                rewritten.append(instruction)
        block.instructions = rewritten
    if entry_stores:
        entry_block = function.entry
        entry_block.instructions = (entry_stores
                                    + entry_block.instructions)
    return loads, stores
