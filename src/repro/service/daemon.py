"""JSON-over-HTTP front end: ``python -m repro serve``.

A :class:`~http.server.ThreadingHTTPServer` (one thread per connection;
evaluation concurrency is governed by the worker pool and admission
queue, not by socket threads) exposing:

* ``POST /v1/evaluate`` — body: an ``EvaluateRequest`` JSON object;
  answers the ``EvaluateResult`` document, or 400/429/500/504 error
  JSON (see :mod:`repro.service.app` for the request lifecycle);
* ``GET /healthz`` — liveness + worker/queue gauges;
* ``GET /metrics`` — the full observability document (queue depth,
  in-flight count, request/stage latency histograms, cache traffic);
* ``GET /v1/schema`` — the API schema version this daemon speaks.

Every request emits one structured JSON log line (method, path, status,
seconds, outcome, request key, queue gauges) to the configured stream.
"""

from __future__ import annotations

import json
import sys
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, Optional, Tuple

from ..api import API_SCHEMA_VERSION
from .app import (HTTP_BAD_REQUEST, HTTP_NOT_FOUND, SchedulerService)
from .config import ServiceConfig

MAX_BODY_BYTES = 1 << 20  # a request describes one cell; 1 MiB is ample


class ServiceDaemon:
    """Owns one :class:`SchedulerService` plus its HTTP server."""

    def __init__(self, config: ServiceConfig):
        self.config = config
        self.service = SchedulerService(config)
        handler = _make_handler(self)
        self.server = ThreadingHTTPServer((config.host, config.port),
                                          handler)
        self.server.daemon_threads = True
        self._thread: Optional[threading.Thread] = None
        self._closed = False

    # -- addresses ---------------------------------------------------------

    @property
    def port(self) -> int:
        """The bound port (useful with ``--port 0``)."""
        return self.server.server_address[1]

    @property
    def address(self) -> str:
        return "http://%s:%d" % (self.server.server_address[0],
                                 self.port)

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "ServiceDaemon":
        """Serve on a background thread (tests, embedding)."""
        self._thread = threading.Thread(
            target=self.server.serve_forever, daemon=True,
            name="repro-serve-http")
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread until interrupted (the CLI)."""
        self.log_event({"event": "serving", "address": self.address,
                        "port": self.port,
                        "workers": self.config.workers,
                        "queue_limit": self.config.queue_limit,
                        "schema": API_SCHEMA_VERSION})
        try:
            self.server.serve_forever()
        finally:
            self.close()

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self.server.shutdown()
        self.server.server_close()
        self.service.close()
        if self._thread is not None:
            self._thread.join(2.0)
        self.log_event({"event": "stopped"})

    # -- logging -----------------------------------------------------------

    def log_event(self, fields: Dict[str, object]) -> None:
        if self.config.quiet:
            return
        stream = self.config.log_stream or sys.stderr
        record = {"ts": round(time.time(), 3)}
        record.update(fields)
        try:
            stream.write(json.dumps(record, sort_keys=True) + "\n")
            stream.flush()
        except Exception:
            pass  # logging must never take the daemon down


def _make_handler(daemon: ServiceDaemon):
    """A request-handler class bound to one daemon instance."""

    class Handler(BaseHTTPRequestHandler):
        server_version = "repro-serve/" + API_SCHEMA_VERSION
        protocol_version = "HTTP/1.1"

        # -- plumbing ------------------------------------------------------

        def log_message(self, format, *args):  # noqa: A002
            pass  # replaced by the structured JSON log below

        def _respond(self, status: int, document: Dict[str, object],
                     started: float, outcome: str,
                     request_key: Optional[str] = None) -> None:
            body = json.dumps(document).encode("utf-8")
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            if status == 429:
                self.send_header("Retry-After", "1")
            self.end_headers()
            try:
                self.wfile.write(body)
            except (BrokenPipeError, ConnectionResetError):
                outcome = outcome + "+client-gone"
            snap = daemon.service.pool.snapshot()
            daemon.log_event({
                "event": "request", "method": self.command,
                "path": self.path, "status": status,
                "seconds": round(time.perf_counter() - started, 4),
                "outcome": outcome, "request_key": request_key,
                "queue_depth": snap["queue_depth"],
                "in_flight": snap["in_flight"],
            })

        def _read_json(self) -> Tuple[Optional[object], Optional[str]]:
            try:
                length = int(self.headers.get("Content-Length", "0"))
            except ValueError:
                return None, "invalid Content-Length"
            if length <= 0:
                return None, "missing request body"
            if length > MAX_BODY_BYTES:
                return None, "request body too large"
            raw = self.rfile.read(length)
            try:
                return json.loads(raw.decode("utf-8")), None
            except (UnicodeDecodeError, json.JSONDecodeError) as error:
                return None, "invalid JSON body: %s" % (error,)

        # -- routes --------------------------------------------------------

        def do_GET(self) -> None:
            started = time.perf_counter()
            path = self.path.split("?", 1)[0]
            if path == "/healthz":
                self._respond(200, daemon.service.health(), started,
                              "health")
            elif path == "/metrics":
                self._respond(200, daemon.service.metrics_document(),
                              started, "metrics")
            elif path == "/v1/schema":
                self._respond(200, {"schema": API_SCHEMA_VERSION},
                              started, "schema")
            else:
                self._respond(HTTP_NOT_FOUND,
                              {"error": "no such endpoint: %s" % path,
                               "kind": "routing"}, started, "not-found")

        def do_POST(self) -> None:
            started = time.perf_counter()
            path = self.path.split("?", 1)[0]
            if path != "/v1/evaluate":
                self._respond(HTTP_NOT_FOUND,
                              {"error": "no such endpoint: %s" % path,
                               "kind": "routing"}, started, "not-found")
                return
            body, error = self._read_json()
            if error is not None:
                self._respond(HTTP_BAD_REQUEST,
                              {"error": error, "kind": "body"},
                              started, "invalid")
                return
            key = None
            if isinstance(body, dict) and ("program" in body
                                           or "workload" in body):
                # Best-effort key for the log line; real validation is
                # the service's job.
                try:
                    from ..api import EvaluateRequest
                    key = EvaluateRequest.from_dict(body).request_key()
                except Exception:
                    key = None
            tenant = (self.headers.get("X-Repro-Tenant")
                      or "default").strip() or "default"
            status, document, outcome = \
                daemon.service.handle_evaluate(body, tenant=tenant)
            self._respond(status, document, started, outcome, key)

    return Handler


def serve(config: ServiceConfig) -> ServiceDaemon:
    """Build a daemon and serve on the calling thread (CLI path)."""
    daemon = ServiceDaemon(config)
    daemon.serve_forever()
    return daemon
