"""``repro.service`` — scheduling as a service (``python -m repro
serve``).

A long-running JSON-over-HTTP daemon that multiplexes many clients over
the shared staged pipeline: requests are admitted through a bounded
queue (429 shedding under overload), dispatched to a supervised
multiprocess worker pool (crash respawn, bounded retry with backoff,
per-request timeout with worker cancellation), memoized by
content-derived request keys, and degraded gracefully to stale cached
artifacts when a fresh evaluation times out.  ``/healthz`` and
``/metrics`` expose queue depth, in-flight count, per-stage latency
histograms, and cache traffic.

The service consumes the pipeline exclusively through the
:mod:`repro.api` facade; see ``docs/architecture.md`` §12 and
``docs/api.md`` for the wire schemas.
"""

from .admission import AdmissionQueue, DEFAULT_TENANT, QueueFullError
from .app import RESULT_STAGE, SchedulerService
from .config import ROLES, ServiceConfig
from .daemon import ServiceDaemon, serve
from .metrics import METRICS_SCHEMA, ServiceMetrics
from .workers import (InlineWorkerPool, ProcessWorkerPool, Task,
                      make_pool)

__all__ = [
    "AdmissionQueue", "DEFAULT_TENANT", "QueueFullError",
    "SchedulerService", "RESULT_STAGE",
    "ServiceConfig", "ROLES", "ServiceDaemon", "serve",
    "ServiceMetrics", "METRICS_SCHEMA",
    "InlineWorkerPool", "ProcessWorkerPool", "Task", "make_pool",
]
