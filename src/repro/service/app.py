"""The scheduling service: admission, memoization, degradation.

:class:`SchedulerService` is the HTTP-agnostic core of ``repro serve``.
One evaluation request travels:

1. **validate** — malformed bodies answer 400 before costing anything;
2. **memoize** — the request key (a content fingerprint over the cell
   and both schema versions, :meth:`EvaluateRequest.request_key`) is
   looked up in the in-process response memo: a hit answers
   immediately with ``memoized: true``, bypassing admission entirely;
3. **admit** — the bounded :class:`AdmissionQueue` sheds with 429 when
   ``queue_limit`` requests are already in the building;
4. **dispatch** — the worker pool evaluates the cell (crashes retried
   with backoff, see :mod:`repro.service.workers`);
5. **degrade** — on timeout the worker is cancelled and, when the
   persistent artifact cache holds a previous result for this key, it
   is served with ``stale: true`` (+ age); otherwise 504.

Successful results are memoized *and* persisted to the artifact cache
under the ``service-result`` stage, so staleness degradation survives
daemon restarts.
"""

from __future__ import annotations

import dataclasses
import threading
import time
from typing import Dict, Mapping, Optional, Tuple

from ..api import (EvaluateRequest, RequestValidationError, get_cache)
from .admission import AdmissionQueue, DEFAULT_TENANT, QueueFullError
from .config import ServiceConfig
from .metrics import ServiceMetrics
from .workers import make_pool

#: ArtifactCache stage name for persisted response documents.
RESULT_STAGE = "service-result"

HTTP_OK = 200
HTTP_BAD_REQUEST = 400
HTTP_NOT_FOUND = 404
HTTP_TOO_MANY = 429
HTTP_ERROR = 500
HTTP_TIMEOUT = 504


class SchedulerService:
    """Admission + memo + pool + degradation, one instance per daemon."""

    def __init__(self, config: ServiceConfig):
        self.config = config.validate()
        self.metrics = ServiceMetrics()
        self.admission = AdmissionQueue(config.queue_limit,
                                        config.tenant_limit or None)
        self.pool = make_pool(config, self.metrics)
        self._memo: Dict[str, Dict[str, object]] = {}
        self._memo_lock = threading.Lock()

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        self.pool.stop()

    # -- request handling --------------------------------------------------

    def handle_evaluate(self, body: object, tenant: str = DEFAULT_TENANT
                        ) -> Tuple[int, Dict[str, object], str]:
        """Process one evaluation request body (already JSON-decoded).
        ``tenant`` is the fairness bucket (the ``X-Repro-Tenant``
        header); it never affects results or request keys, only which
        admission allowance the request draws from.  Returns
        ``(http_status, response_document, outcome)`` where ``outcome``
        is the one-word disposition for the request log."""
        self.metrics.incr("requests_total")
        started = time.perf_counter()
        try:
            request = EvaluateRequest.from_dict(body)
        except RequestValidationError as error:
            self.metrics.incr("validation_errors")
            return (HTTP_BAD_REQUEST,
                    {"error": str(error), "kind": "validation"},
                    "invalid")
        if isinstance(body, Mapping) and "backend" not in body:
            # Requests that don't name a backend inherit the daemon's
            # (results and the request key are backend-invariant).
            request = dataclasses.replace(request,
                                          backend=self.config.backend)
        key = request.request_key()

        memoized = self._memo_lookup(key)
        if memoized is not None:
            self.metrics.incr("memo_hits")
            self.metrics.incr("responses_ok")
            return HTTP_OK, memoized, "memo"

        try:
            self.admission.enter(tenant)
        except QueueFullError as error:
            self.metrics.incr("shed_total")
            snap = self.pool.snapshot()
            return (HTTP_TOO_MANY,
                    {"error": str(error), "kind": "shed",
                     "tenant": tenant,
                     "queue_depth": snap["queue_depth"],
                     "queue_limit": self.admission.limit},
                    "shed")
        try:
            status, document, outcome = self._evaluate_admitted(
                request, key)
        finally:
            self.admission.leave(tenant)
        if status == HTTP_OK:
            self.metrics.incr("responses_ok")
            self.metrics.observe_request(time.perf_counter() - started)
        else:
            self.metrics.incr("responses_error")
        return status, document, outcome

    def _evaluate_admitted(self, request: EvaluateRequest, key: str
                           ) -> Tuple[int, Dict[str, object], str]:
        task = self.pool.submit(request)
        finished = task.wait(self.config.request_timeout)
        if not finished:
            self.pool.cancel(task)
            task.wait(0.1)  # let the cancel settle
        if task.result is not None:
            self.metrics.incr("evaluations_completed")
            self.metrics.merge_telemetry(task.result.get("telemetry"))
            self._memo_store(key, task.result)
            return HTTP_OK, task.result, "ok"
        if task.timed_out or not finished:
            self.metrics.incr("timeouts_total")
            stale = self._stale_lookup(key)
            if stale is not None:
                self.metrics.incr("stale_served")
                return HTTP_OK, stale, "stale"
            return (HTTP_TIMEOUT,
                    {"error": task.error or "evaluation timed out",
                     "kind": "timeout",
                     "timeout_seconds": self.config.request_timeout},
                    "timeout")
        return (HTTP_ERROR,
                {"error": task.error or "evaluation failed",
                 "kind": "evaluation"},
                "error")

    # -- memo + stale degradation ------------------------------------------

    def _memo_lookup(self, key: str) -> Optional[Dict[str, object]]:
        with self._memo_lock:
            document = self._memo.get(key)
        if document is None:
            return None
        marked = dict(document)
        marked["memoized"] = True
        return marked

    def _memo_store(self, key: str, document: Dict[str, object]) -> None:
        with self._memo_lock:
            self._memo[key] = document
        # Persist for cross-restart stale degradation; best effort.
        get_cache().store(RESULT_STAGE, key, document)

    def _stale_lookup(self, key: str) -> Optional[Dict[str, object]]:
        """A previously computed response for this key, marked stale."""
        with self._memo_lock:
            document = self._memo.get(key)
        meta: Dict[str, object] = {}
        if document is None:
            hit, payload, meta = get_cache().load_with_meta(
                RESULT_STAGE, key)
            if not hit or not isinstance(payload, dict):
                return None
            document = payload
        marked = dict(document)
        marked["stale"] = True
        stored_at = float(meta.get("stored_at", 0.0) or 0.0)
        if stored_at:
            marked["stale_age_seconds"] = max(0.0,
                                              time.time() - stored_at)
        return marked

    # -- observability -----------------------------------------------------

    def health(self) -> Dict[str, object]:
        snap = self.pool.snapshot()
        return {
            "status": "ok",
            "workers": snap["workers"],
            "in_flight": snap["in_flight"],
            "queue_depth": snap["queue_depth"],
            "uptime_seconds": time.time() - self.metrics.started_at,
        }

    def metrics_document(self) -> Dict[str, object]:
        snap = self.pool.snapshot()
        return self.metrics.snapshot(
            queue_depth=snap["queue_depth"],
            in_flight=snap["in_flight"],
            workers=snap["workers"],
            queue_limit=self.admission.limit,
            tenants=self.admission.tenants(),
            store_counters=get_cache().store_counters())
