"""Configuration for the ``repro serve`` daemon."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from ..machine.backend import DEFAULT_BACKEND, validate_backend

#: Roles ``repro serve`` can assume (see :mod:`repro.cluster`).
ROLES = ("standalone", "coordinator", "worker")


@dataclass
class ServiceConfig:
    """Every operational knob of the scheduling service.

    ``workers > 0`` runs evaluations on that many persistent worker
    *processes* (crash-isolated, cancellable); ``workers == 0`` selects
    the inline thread executor — no process isolation (a timed-out
    evaluation keeps running to completion in the background), but no
    ``multiprocessing`` dependency either, which is also the automatic
    fallback when process pools are unavailable.
    """

    host: str = "127.0.0.1"
    port: int = 8184
    #: Worker processes (0 = inline thread executor).
    workers: int = 2
    #: Admitted-but-unfinished request bound; beyond it requests are
    #: shed with HTTP 429 instead of queueing unboundedly.
    queue_limit: int = 16
    #: Per-request evaluation budget, seconds.  On expiry the worker is
    #: cancelled and the response degrades to a cached artifact
    #: (``stale: true``) when one exists, else HTTP 504.
    request_timeout: float = 30.0
    #: Crashed-worker retry budget per request (the re-dispatches after
    #: a worker dies mid-evaluation), with linear backoff between tries.
    max_retries: int = 2
    retry_backoff: float = 0.05
    #: Supervisor poll interval for deadlines / dead workers, seconds.
    poll_interval: float = 0.02
    #: Inline-executor threads (used when ``workers == 0``).
    inline_threads: int = 4
    #: Structured JSON request-log sink; ``None`` = ``sys.stderr``.
    #: ``quiet=True`` drops request logs entirely (tests).
    log_stream: Optional[object] = None
    quiet: bool = False
    #: Simulator backend applied to requests that do not name one
    #: (see :mod:`repro.machine.backend`).  Backends are bit-identical,
    #: so this changes host latency only — never results or memo keys.
    backend: str = DEFAULT_BACKEND
    #: Test seam: replaces the evaluation callable in *inline* mode
    #: (process workers always run the real facade path).
    evaluate_fn: Optional[Callable] = field(default=None, repr=False)
    #: Cluster role: ``standalone`` (this host answers ``/v1/evaluate``
    #: itself — the historical behaviour), ``coordinator`` (shard
    #: requests across registered worker nodes, serve the remote
    #: artifact store and cluster dashboard), or ``worker`` (register
    #: with a coordinator and evaluate the shard routed here).
    role: str = "standalone"
    #: Coordinator base URL (required when ``role == "worker"``).
    coordinator_url: Optional[str] = None
    #: Stable node identity used for rendezvous sharding; defaults to
    #: ``host:port`` when unset.
    node_id: Optional[str] = None
    #: Worker → coordinator heartbeat period, seconds.  A node silent
    #: for ~3 periods is marked unhealthy and sharded around.
    heartbeat_interval: float = 2.0
    #: Per-tenant in-flight cap (0/None = the global ``queue_limit``,
    #: i.e. no extra cap).  Set below ``queue_limit`` to guarantee one
    #: flooding tenant cannot occupy every admission slot.
    tenant_limit: int = 0

    def validate(self) -> "ServiceConfig":
        validate_backend(self.backend)
        if self.workers < 0:
            raise ValueError("workers must be >= 0")
        if self.queue_limit < 1:
            raise ValueError("queue_limit must be >= 1")
        if self.request_timeout <= 0:
            raise ValueError("request_timeout must be positive")
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.inline_threads < 1:
            raise ValueError("inline_threads must be >= 1")
        if self.role not in ROLES:
            raise ValueError("role must be one of %s" % (ROLES,))
        if self.role == "worker" and not self.coordinator_url:
            raise ValueError("--role worker requires --coordinator URL")
        if self.heartbeat_interval <= 0:
            raise ValueError("heartbeat_interval must be positive")
        if self.tenant_limit < 0:
            raise ValueError("tenant_limit must be >= 0")
        return self
