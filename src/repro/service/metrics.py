"""Service observability, built on the pipeline's :class:`Telemetry`.

One :class:`ServiceMetrics` instance aggregates, thread-safely:

* **request counters** — admitted/completed/shed/timed-out/stale/
  memoized/errored, worker crashes and respawns;
* **latency histograms** — end-to-end request latency plus the
  per-stage histograms every evaluation's telemetry carries (merged
  from worker processes via the result document);
* **cache traffic** — artifact-cache hits/misses/invalidations/stores,
  combining the local process stats with the merged telemetry (worker
  processes do their cache I/O remotely).

``snapshot()`` renders the whole thing as the ``/metrics`` JSON
document.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, Optional

from ..api import LatencyHistogram, Telemetry, get_cache

METRICS_SCHEMA = "repro.service.metrics/v1"

#: Counter names, all always present in ``/metrics`` (zero-valued until
#: first incremented) so dashboards never key-error on a fresh daemon.
COUNTERS = (
    "requests_total", "responses_ok", "responses_error",
    "validation_errors", "shed_total", "timeouts_total", "stale_served",
    "memo_hits", "worker_crashes", "worker_respawns", "retries_total",
    "evaluations_completed",
)


class ServiceMetrics:
    """Thread-safe aggregate of everything ``/metrics`` exports."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.started_at = time.time()
        self.counters: Dict[str, int] = {name: 0 for name in COUNTERS}
        self.telemetry = Telemetry()
        self.request_latency = LatencyHistogram()

    # -- recording ---------------------------------------------------------

    def incr(self, name: str, amount: int = 1) -> None:
        with self._lock:
            self.counters[name] = self.counters.get(name, 0) + amount

    def observe_request(self, seconds: float) -> None:
        with self._lock:
            self.request_latency.observe(seconds)

    def merge_telemetry(self,
                        telemetry_dict: Optional[Dict[str, object]]
                        ) -> None:
        """Fold one evaluation's telemetry document (possibly produced
        in a worker process) into the service aggregate."""
        if not telemetry_dict:
            return
        merged = Telemetry.from_dict(telemetry_dict)
        with self._lock:
            self.telemetry.merge(merged)

    # -- rendering ---------------------------------------------------------

    def cache_section(self) -> Dict[str, int]:
        stats = get_cache().stats
        with self._lock:
            telemetry = self.telemetry
            return {
                # Worker-process traffic only surfaces via telemetry;
                # inline-mode traffic only via the local CacheStats.
                "hits": max(stats.hits, telemetry.cache_hits),
                "misses": max(stats.misses, telemetry.cache_misses),
                "invalidations": stats.invalidations,
                "stores": stats.stores,
            }

    def snapshot(self, queue_depth: int = 0, in_flight: int = 0,
                 workers: int = 0, queue_limit: int = 0,
                 tenants: Optional[Dict[str, Dict[str, int]]] = None,
                 store_counters: Optional[Dict[str, int]] = None
                 ) -> Dict[str, object]:
        """The ``/metrics`` document."""
        cache = self.cache_section()
        if store_counters:
            cache["store"] = dict(store_counters)
        with self._lock:
            return {
                "schema": METRICS_SCHEMA,
                "uptime_seconds": time.time() - self.started_at,
                "queue": {
                    "depth": queue_depth,
                    "in_flight": in_flight,
                    "limit": queue_limit,
                    "workers": workers,
                },
                "counters": dict(self.counters),
                "request_latency": self.request_latency.to_dict(),
                "stages": {
                    name: {
                        "runs": record.runs,
                        "cache_hits": record.cache_hits,
                        "cache_misses": record.cache_misses,
                        "seconds": record.seconds,
                        "histogram":
                            (self.telemetry.histograms[name].to_dict()
                             if name in self.telemetry.histograms
                             else None),
                    }
                    for name, record in self.telemetry.stages.items()},
                "pipeline_counters": dict(self.telemetry.counters),
                "cache": cache,
                "tenants": dict(tenants or {}),
            }
