"""The bounded evaluation worker pool behind ``repro serve``.

Two interchangeable executors sit behind one :class:`Task` interface:

* :class:`ProcessWorkerPool` — ``workers`` persistent child processes,
  each looping over a private inbox and a shared outbox (the same
  payload shape as :func:`repro.api.run_cell_payload`, so service
  workers and ``sweep --jobs`` workers evaluate cells identically,
  sharing the on-disk artifact cache).  A supervisor thread dispatches
  queued tasks, detects **crashed workers** (respawn + bounded retry
  with linear backoff), and executes **cancellations**: a timed-out
  request's worker is terminated and respawned, so one runaway
  evaluation never wedges a slot.
* :class:`InlineWorkerPool` — a thread executor with the same surface,
  used when ``--workers 0`` or when ``multiprocessing`` is unavailable.
  Threads cannot be cancelled preemptively; a timed-out task is
  *abandoned* (its eventual completion is discarded) — documented
  graceful degradation.

Neither pool knows about HTTP, admission, memoization, or staleness —
that is :mod:`repro.service.app`'s job.
"""

from __future__ import annotations

import collections
import os
import queue as queue_module
import threading
import time
import warnings
from typing import Deque, Dict, List, Optional, Tuple

from ..api import EvaluateRequest
from .config import ServiceConfig
from .metrics import ServiceMetrics

_TIMEOUT_ERROR = "evaluation timed out"


def _test_delay() -> None:
    """Test seam: stretch every evaluation (both executors) so failover
    tests can SIGKILL a node mid-request deterministically."""
    delay = float(os.environ.get("REPRO_SERVE_TEST_DELAY", "0") or 0)
    if delay > 0:
        time.sleep(delay)


def _evaluate_request_dict(request_dict: Dict[str, object],
                           cache_dir: str,
                           cache_enabled: bool) -> Dict[str, object]:
    """The unit of work a worker process executes: rebuild the request,
    run the cell through the *same* pool machinery as ``sweep --jobs``
    (:func:`repro.api.run_cell_payload`), wrap as a result document."""
    from ..api import EvaluateResult, configure_cache, evaluate, \
        run_cell_payload
    from ..api import EvaluateRequest as Request
    _test_delay()
    request = Request.from_dict(request_dict)
    if request.trace:
        # Traced requests carry per-run trace state that the cell-based
        # pool payload cannot represent; evaluate through the facade.
        configure_cache(cache_dir, cache_enabled)
        return evaluate(request).as_dict()
    payload = (request.cell(), request.check, cache_dir, cache_enabled)
    evaluation = run_cell_payload(payload)
    return EvaluateResult.from_evaluation(request, evaluation).as_dict()


#: Module-level evaluation hook: worker children call through this name
#: so tests (under the fork start method) can substitute slow/blocking
#: evaluations before the pool starts.
_EVALUATE = _evaluate_request_dict


def _worker_main(worker_id: int, inbox, outbox, cache_dir: str,
                 cache_enabled: bool) -> None:  # pragma: no cover - child
    while True:
        item = inbox.get()
        if item is None:
            return
        task_id, request_dict = item
        try:
            result = _EVALUATE(request_dict, cache_dir, cache_enabled)
            outbox.put((worker_id, task_id, True, result))
        except BaseException as error:
            try:
                outbox.put((worker_id, task_id, False,
                            "%s: %s" % (type(error).__name__, error)))
            except Exception:
                return


class Task:
    """One submitted evaluation: a future the HTTP handler waits on."""

    _next_id = [0]
    _id_lock = threading.Lock()

    def __init__(self, request: EvaluateRequest):
        with Task._id_lock:
            Task._next_id[0] += 1
            self.id = Task._next_id[0]
        self.request = request
        self.enqueued_at = time.time()
        self.attempts = 0
        self._lock = threading.Lock()
        self._event = threading.Event()
        self.done = False
        self.result: Optional[Dict[str, object]] = None
        self.error: Optional[str] = None
        self.timed_out = False

    def complete(self, result: Dict[str, object]) -> bool:
        with self._lock:
            if self.done:
                return False
            self.done, self.result = True, result
        self._event.set()
        return True

    def fail(self, error: str, timed_out: bool = False) -> bool:
        with self._lock:
            if self.done:
                return False
            self.done, self.error, self.timed_out = True, error, timed_out
        self._event.set()
        return True

    def wait(self, timeout: Optional[float]) -> bool:
        return self._event.wait(timeout)


class _WorkerHandle:
    """Parent-side view of one worker process."""

    __slots__ = ("worker_id", "process", "inbox", "task")

    def __init__(self, worker_id: int, process, inbox):
        self.worker_id = worker_id
        self.process = process
        self.inbox = inbox
        self.task: Optional[Task] = None


class ProcessWorkerPool:
    """Persistent multiprocess executor with supervision."""

    def __init__(self, config: ServiceConfig, metrics: ServiceMetrics):
        import multiprocessing
        self.config = config
        self.metrics = metrics
        methods = multiprocessing.get_all_start_methods()
        self._ctx = multiprocessing.get_context(
            "fork" if "fork" in methods else None)
        from ..api import get_cache
        cache = get_cache()
        self._cache_dir = cache.directory
        self._cache_enabled = cache.enabled
        self._outbox = self._ctx.Queue()
        self._lock = threading.Lock()
        self._wakeup = threading.Condition(self._lock)
        self._pending: Deque[Task] = collections.deque()
        self._delayed: List[Tuple[float, Task]] = []
        self._inflight: Dict[int, Task] = {}
        self._handles: List[_WorkerHandle] = []
        self._stopping = False
        self._threads: List[threading.Thread] = []
        self.respawns = 0

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "ProcessWorkerPool":
        with self._lock:
            for worker_id in range(self.config.workers):
                self._handles.append(self._spawn(worker_id))
        self._threads = [
            threading.Thread(target=self._supervise, daemon=True,
                             name="repro-serve-supervisor"),
            threading.Thread(target=self._collect, daemon=True,
                             name="repro-serve-collector"),
        ]
        for thread in self._threads:
            thread.start()
        return self

    def _spawn(self, worker_id: int) -> _WorkerHandle:
        inbox = self._ctx.Queue()
        process = self._ctx.Process(
            target=_worker_main,
            args=(worker_id, inbox, self._outbox, self._cache_dir,
                  self._cache_enabled),
            daemon=True, name="repro-serve-worker-%d" % worker_id)
        process.start()
        return _WorkerHandle(worker_id, process, inbox)

    def stop(self) -> None:
        with self._wakeup:
            self._stopping = True
            for task in list(self._pending) + [t for _, t in self._delayed]:
                task.fail("service shutting down")
            self._pending.clear()
            self._delayed = []
            handles = list(self._handles)
            self._wakeup.notify_all()
        for handle in handles:
            try:
                handle.inbox.put(None)
            except Exception:
                pass
        deadline = time.time() + 2.0
        for handle in handles:
            handle.process.join(max(0.0, deadline - time.time()))
            if handle.process.is_alive():
                handle.process.terminate()
                handle.process.join(1.0)
            if handle.task is not None:
                handle.task.fail("service shutting down")

    # -- submission --------------------------------------------------------

    def submit(self, request: EvaluateRequest) -> Task:
        task = Task(request)
        with self._wakeup:
            if self._stopping:
                task.fail("service shutting down")
                return task
            self._pending.append(task)
            self._wakeup.notify_all()
        return task

    def cancel(self, task: Task, reason: str = _TIMEOUT_ERROR) -> None:
        """Cancel a task: drop it if still queued, or terminate (and
        respawn) the worker evaluating it."""
        with self._wakeup:
            if task.done:
                return
            try:
                self._pending.remove(task)
            except ValueError:
                pass
            else:
                task.fail(reason, timed_out=True)
                return
            self._delayed = [(ready, t) for ready, t in self._delayed
                             if t is not task]
            handle = next((h for h in self._handles if h.task is task),
                          None)
            if handle is None:
                task.fail(reason, timed_out=True)
                return
            self._kill_and_respawn(handle)
        task.fail(reason, timed_out=True)

    # -- introspection -----------------------------------------------------

    def snapshot(self) -> Dict[str, int]:
        with self._lock:
            return {
                "queue_depth": len(self._pending) + len(self._delayed),
                "in_flight": sum(1 for h in self._handles
                                 if h.task is not None),
                "workers": len(self._handles),
            }

    def worker_pids(self) -> List[int]:
        with self._lock:
            return [handle.process.pid for handle in self._handles]

    # -- supervision -------------------------------------------------------

    def _kill_and_respawn(self, handle: _WorkerHandle) -> None:
        """Terminate a worker and give its slot a fresh process.  The
        caller holds the lock and owns completing/failing the old
        task."""
        if handle.task is not None:
            self._inflight.pop(handle.task.id, None)
        handle.task = None
        try:
            handle.process.terminate()
            handle.process.join(1.0)
        except Exception:
            pass
        fresh = self._spawn(handle.worker_id)
        handle.process, handle.inbox = fresh.process, fresh.inbox
        self.respawns += 1
        self.metrics.incr("worker_respawns")

    def _supervise(self) -> None:
        while True:
            with self._wakeup:
                if self._stopping:
                    return
                now = time.time()
                # Promote delayed retries whose backoff elapsed.
                ready = [t for r, t in self._delayed if r <= now]
                self._delayed = [(r, t) for r, t in self._delayed
                                 if r > now]
                for task in ready:
                    self._pending.appendleft(task)
                # Detect crashed workers (killed or died mid-task).
                for handle in self._handles:
                    if handle.process.is_alive():
                        continue
                    task = handle.task
                    if task is not None:
                        self._inflight.pop(task.id, None)
                    handle.task = None
                    fresh = self._spawn(handle.worker_id)
                    handle.process = fresh.process
                    handle.inbox = fresh.inbox
                    self.respawns += 1
                    self.metrics.incr("worker_respawns")
                    if task is not None and not task.done:
                        self.metrics.incr("worker_crashes")
                        task.attempts += 1
                        if task.attempts <= self.config.max_retries:
                            self.metrics.incr("retries_total")
                            backoff = (self.config.retry_backoff
                                       * task.attempts)
                            self._delayed.append((now + backoff, task))
                        else:
                            task.fail("worker crashed (%d attempts)"
                                      % task.attempts)
                # Dispatch queued tasks onto idle workers.
                for handle in self._handles:
                    if not self._pending:
                        break
                    if handle.task is not None:
                        continue
                    task = self._pending.popleft()
                    if task.done:
                        continue
                    handle.task = task
                    self._inflight[task.id] = task
                    try:
                        handle.inbox.put(
                            (task.id, task.request.as_dict()))
                    except Exception as error:
                        handle.task = None
                        self._inflight.pop(task.id, None)
                        task.fail("dispatch failed: %s" % (error,))
                self._wakeup.wait(self.config.poll_interval)

    def _collect(self) -> None:
        while True:
            try:
                item = self._outbox.get(timeout=0.1)
            except queue_module.Empty:
                with self._lock:
                    if self._stopping:
                        return
                continue
            except (EOFError, OSError):
                return
            worker_id, task_id, ok, payload = item
            with self._wakeup:
                task = self._inflight.pop(task_id, None)
                for handle in self._handles:
                    if (handle.worker_id == worker_id
                            and handle.task is not None
                            and handle.task.id == task_id):
                        handle.task = None
                self._wakeup.notify_all()
            if task is None:
                continue  # stale result for a cancelled/retried task
            if ok:
                task.complete(payload)
            else:
                task.fail(payload)


class InlineWorkerPool:
    """Thread executor with the :class:`ProcessWorkerPool` surface."""

    def __init__(self, config: ServiceConfig, metrics: ServiceMetrics):
        self.config = config
        self.metrics = metrics
        self._queue: "queue_module.Queue[Optional[Task]]" = \
            queue_module.Queue()
        self._lock = threading.Lock()
        self._in_flight = 0
        self._stopping = False
        self._threads: List[threading.Thread] = []
        self.respawns = 0

    def start(self) -> "InlineWorkerPool":
        for index in range(self.config.inline_threads):
            thread = threading.Thread(
                target=self._run, daemon=True,
                name="repro-serve-inline-%d" % index)
            thread.start()
            self._threads.append(thread)
        return self

    def stop(self) -> None:
        with self._lock:
            self._stopping = True
        for _ in self._threads:
            self._queue.put(None)

    def submit(self, request: EvaluateRequest) -> Task:
        task = Task(request)
        with self._lock:
            if self._stopping:
                task.fail("service shutting down")
                return task
        self._queue.put(task)
        return task

    def cancel(self, task: Task, reason: str = _TIMEOUT_ERROR) -> None:
        # Threads cannot be preempted: mark the task done so the
        # eventual completion is discarded (abandonment, not cancel).
        task.fail(reason, timed_out=True)

    def snapshot(self) -> Dict[str, int]:
        with self._lock:
            return {"queue_depth": self._queue.qsize(),
                    "in_flight": self._in_flight,
                    "workers": len(self._threads)}

    def worker_pids(self) -> List[int]:
        return []

    def _run(self) -> None:
        from ..api import evaluate
        while True:
            task = self._queue.get()
            if task is None:
                return
            if task.done:
                continue
            with self._lock:
                self._in_flight += 1
            try:
                _test_delay()
                evaluate_fn = self.config.evaluate_fn or evaluate
                result = evaluate_fn(task.request)
                task.complete(result.as_dict())
            except Exception as error:
                task.fail("%s: %s" % (type(error).__name__, error))
            finally:
                with self._lock:
                    self._in_flight -= 1


def make_pool(config: ServiceConfig, metrics: ServiceMetrics):
    """Build the configured executor, degrading to the inline pool when
    process pools cannot start (no ``multiprocessing``, sandboxed
    platforms, ...)."""
    if config.workers > 0:
        try:
            return ProcessWorkerPool(config, metrics).start()
        except Exception as error:
            warnings.warn("process worker pool unavailable (%s); "
                          "falling back to inline threads" % (error,),
                          RuntimeWarning)
    return InlineWorkerPool(config, metrics).start()
