"""Admission control: a bounded concurrent-request gate with per-tenant
fairness.

The daemon admits at most ``limit`` requests at a time (queued for a
worker slot + executing).  Beyond that it *sheds*: the handler answers
HTTP 429 immediately instead of letting a burst build an unbounded
backlog whose entries would all time out anyway.  Memoized responses
bypass admission entirely — they cost microseconds and never occupy a
worker.

Requests carry a tenant id (the ``X-Repro-Tenant`` header; absent =
``"default"``).  Each tenant is additionally capped at ``tenant_limit``
in-flight requests (default: the global limit, i.e. no extra cap), so a
single flooding tenant exhausts *its own* allowance and gets the 429s
while other tenants' requests keep being admitted — shedding is fair,
not first-come-first-starved.  Per-tenant active/admitted/shed counters
feed the ``/metrics`` ``tenants`` section and the cluster dashboard.
"""

from __future__ import annotations

import threading
from typing import Dict, Optional

DEFAULT_TENANT = "default"


class QueueFullError(Exception):
    """The admission queue is at capacity (HTTP 429)."""

    def __init__(self, limit: int, tenant: str = DEFAULT_TENANT,
                 tenant_full: bool = False):
        scope = ("tenant %r at limit %d" % (tenant, limit) if tenant_full
                 else "admission queue full (limit %d)" % limit)
        super().__init__(scope)
        self.limit = limit
        self.tenant = tenant
        self.tenant_full = tenant_full


class _TenantSlot:
    __slots__ = ("active", "admitted", "shed")

    def __init__(self) -> None:
        self.active = 0
        self.admitted = 0
        self.shed = 0


class AdmissionQueue:
    """A counting gate with shed-on-full semantics (no blocking)."""

    def __init__(self, limit: int, tenant_limit: Optional[int] = None):
        self.limit = limit
        self.tenant_limit = tenant_limit if tenant_limit else limit
        self._lock = threading.Lock()
        self._active = 0
        self._tenants: Dict[str, _TenantSlot] = {}
        self.admitted_total = 0
        self.shed_total = 0

    @property
    def active(self) -> int:
        with self._lock:
            return self._active

    def enter(self, tenant: str = DEFAULT_TENANT) -> None:
        """Admit the caller or raise :class:`QueueFullError` — never
        blocks, by design: under overload, fast rejection beats a
        convoy of doomed waiters."""
        with self._lock:
            slot = self._tenants.setdefault(tenant, _TenantSlot())
            if slot.active >= self.tenant_limit:
                slot.shed += 1
                self.shed_total += 1
                raise QueueFullError(self.tenant_limit, tenant,
                                     tenant_full=True)
            if self._active >= self.limit:
                slot.shed += 1
                self.shed_total += 1
                raise QueueFullError(self.limit, tenant)
            self._active += 1
            slot.active += 1
            slot.admitted += 1
            self.admitted_total += 1

    def leave(self, tenant: str = DEFAULT_TENANT) -> None:
        with self._lock:
            if self._active > 0:
                self._active -= 1
            slot = self._tenants.get(tenant)
            if slot is not None and slot.active > 0:
                slot.active -= 1

    def tenants(self) -> Dict[str, Dict[str, int]]:
        """Per-tenant gauge/counter snapshot for ``/metrics``."""
        with self._lock:
            return {name: {"active": slot.active,
                           "admitted": slot.admitted,
                           "shed": slot.shed}
                    for name, slot in sorted(self._tenants.items())}

    def __enter__(self) -> "AdmissionQueue":
        self.enter()
        return self

    def __exit__(self, *exc_info) -> None:
        self.leave()
