"""Admission control: a bounded concurrent-request gate.

The daemon admits at most ``limit`` requests at a time (queued for a
worker slot + executing).  Beyond that it *sheds*: the handler answers
HTTP 429 immediately instead of letting a burst build an unbounded
backlog whose entries would all time out anyway.  Memoized responses
bypass admission entirely — they cost microseconds and never occupy a
worker.
"""

from __future__ import annotations

import threading


class QueueFullError(Exception):
    """The admission queue is at capacity (HTTP 429)."""

    def __init__(self, limit: int):
        super().__init__("admission queue full (limit %d)" % limit)
        self.limit = limit


class AdmissionQueue:
    """A counting gate with shed-on-full semantics (no blocking)."""

    def __init__(self, limit: int):
        self.limit = limit
        self._lock = threading.Lock()
        self._active = 0
        self.admitted_total = 0
        self.shed_total = 0

    @property
    def active(self) -> int:
        with self._lock:
            return self._active

    def enter(self) -> None:
        """Admit the caller or raise :class:`QueueFullError` — never
        blocks, by design: under overload, fast rejection beats a
        convoy of doomed waiters."""
        with self._lock:
            if self._active >= self.limit:
                self.shed_total += 1
                raise QueueFullError(self.limit)
            self._active += 1
            self.admitted_total += 1

    def leave(self) -> None:
        with self._lock:
            if self._active > 0:
                self._active -= 1

    def __enter__(self) -> "AdmissionQueue":
        self.enter()
        return self

    def __exit__(self, *exc_info) -> None:
        self.leave()
