"""SPEC ``177.mesa``: ``general_textured_triangle`` (32% of execution).

The rasterizer's textured-span inner loop: fixed-point interpolation of the
texture coordinates and depth across a scanline, a texel fetch through
computed indices, and a per-pixel depth test guarding the framebuffer and
z-buffer writes.  (Fixed-point integer arithmetic stands in for Mesa's
float interpolants; the loop/branch/memory structure is preserved.)
"""

from __future__ import annotations

from typing import Dict

from ..ir.builder import FunctionBuilder
from ..ir.cfg import Function
from .common import (Workload, WorkloadInputs, register, rng_for,
                     scale_size)

TEX_W = 16
TEX_H = 16
MAX_SPAN = 1024
FIX = 8  # fixed-point fraction bits


def build() -> Function:
    b = FunctionBuilder(
        "general_textured_triangle",
        params=["p_tex", "p_fb", "p_zb", "r_len", "r_s0", "r_ds", "r_t0",
                "r_dt", "r_z0", "r_dz", "r_intensity"],
        live_outs=["r_written"])
    b.mem("texture", TEX_W * TEX_H, ptr="p_tex")
    b.mem("framebuffer", MAX_SPAN, ptr="p_fb")
    b.mem("zbuffer", MAX_SPAN, ptr="p_zb")

    b.label("entry")
    b.movi("r_written", 0)
    b.mov("r_s", "r_s0")
    b.mov("r_t", "r_t0")
    b.mov("r_z", "r_z0")
    b.movi("r_i", 0)
    b.jmp("span")

    b.label("span")
    b.cmplt("r_c", "r_i", "r_len")
    b.br("r_c", "pixel", "done")

    b.label("pixel")
    # Texel index from fixed-point s/t, wrapped to the texture size.
    b.shr("r_si", "r_s", FIX)
    b.and_("r_si", "r_si", TEX_W - 1)
    b.shr("r_ti", "r_t", FIX)
    b.and_("r_ti", "r_ti", TEX_H - 1)
    b.mul("r_trow", "r_ti", TEX_W)
    b.add("r_tidx", "r_trow", "r_si")
    b.add("r_pt", "p_tex", "r_tidx")
    b.load("r_texel", "r_pt", 0, region="texture")
    # Depth test.
    b.add("r_pz", "p_zb", "r_i")
    b.load("r_zold", "r_pz", 0, region="zbuffer")
    b.cmplt("r_pass", "r_z", "r_zold")
    b.br("r_pass", "write", "advance")

    b.label("write")
    b.store("r_pz", "r_z", 0, region="zbuffer")
    b.mul("r_color", "r_texel", "r_intensity")
    b.shr("r_color", "r_color", FIX)
    b.add("r_pf", "p_fb", "r_i")
    b.store("r_pf", "r_color", 0, region="framebuffer")
    b.add("r_written", "r_written", 1)
    b.jmp("advance")

    b.label("advance")
    b.add("r_s", "r_s", "r_ds")
    b.add("r_t", "r_t", "r_dt")
    b.add("r_z", "r_z", "r_dz")
    b.add("r_i", "r_i", 1)
    b.jmp("span")

    b.label("done")
    b.exit()
    return b.build()


def reference(inputs: WorkloadInputs) -> Dict[str, object]:
    args = inputs.args
    tex = inputs.memory["texture"]
    fb = list(inputs.memory["framebuffer"])
    zb = list(inputs.memory["zbuffer"])
    s, t, z = args["r_s0"], args["r_t0"], args["r_z0"]
    written = 0
    for i in range(args["r_len"]):
        si = (s >> FIX) & (TEX_W - 1)
        ti = (t >> FIX) & (TEX_H - 1)
        texel = tex[ti * TEX_W + si]
        if z < zb[i]:
            zb[i] = z
            fb[i] = (texel * args["r_intensity"]) >> FIX
            written += 1
        s += args["r_ds"]
        t += args["r_dt"]
        z += args["r_dz"]
    return {"r_written": written, "framebuffer": fb, "zbuffer": zb}


def _inputs(scale: str) -> WorkloadInputs:
    length = scale_size(scale, train=80, ref=1000)
    rng = rng_for("mesa", scale)
    texture = [rng.randrange(0, 256) for _ in range(TEX_W * TEX_H)]
    zbuffer = [rng.randrange(100, 1000) for _ in range(MAX_SPAN)]
    return WorkloadInputs(
        args={"r_len": length, "r_s0": rng.randrange(0, 1 << FIX),
              "r_ds": rng.randrange(20, 90),
              "r_t0": rng.randrange(0, 1 << FIX),
              "r_dt": rng.randrange(20, 90),
              "r_z0": 90, "r_dz": 2,
              "r_intensity": rng.randrange(128, 256)},
        memory={"texture": texture,
                "framebuffer": [0] * MAX_SPAN,
                "zbuffer": zbuffer})


register(Workload(
    name="177.mesa", benchmark="177.mesa",
    function_name="general_textured_triangle",
    exec_percent=32, suite="SPEC-CPU", build=build,
    make_inputs=_inputs, reference=reference,
    output_objects=("framebuffer", "zbuffer"),
    description="textured span rasterization with depth test"))
