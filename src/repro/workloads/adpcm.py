"""MediaBench adpcm: ``adpcm_decoder`` and ``adpcm_coder`` (100% of
benchmark execution each).

The classic Intel/DVI IMA-ADPCM codec: a serial predictor
(``valpred``/``index``/``step`` recurrences) with data-dependent branches on
the delta bits — the archetypal irregular, hard-to-parallelize MediaBench
kernel of the papers' evaluation.  One nibble/sample per memory word.
"""

from __future__ import annotations

from typing import Dict

from ..ir.builder import FunctionBuilder
from ..ir.cfg import Function
from .common import (Workload, WorkloadInputs, register, rng_for,
                     scale_size)

STEP_TABLE = [
    7, 8, 9, 10, 11, 12, 13, 14, 16, 17, 19, 21, 23, 25, 28, 31, 34, 37,
    41, 45, 50, 55, 60, 66, 73, 80, 88, 97, 107, 118, 130, 143, 157, 173,
    190, 209, 230, 253, 279, 307, 337, 371, 408, 449, 494, 544, 598, 658,
    724, 796, 876, 963, 1060, 1166, 1282, 1411, 1552, 1707, 1878, 2066,
    2272, 2499, 2749, 3024, 3327, 3660, 4026, 4428, 4871, 5358, 5894,
    6484, 7132, 7845, 8630, 9493, 10442, 11487, 12635, 13899, 15289,
    16818, 18500, 20350, 22385, 24623, 27086, 29794, 32767,
]
INDEX_TABLE = [-1, -1, -1, -1, 2, 4, 6, 8, -1, -1, -1, -1, 2, 4, 6, 8]

MAX_N = 2048


def build_decoder() -> Function:
    b = FunctionBuilder("adpcm_decoder",
                        params=["p_in", "p_out", "p_step", "p_idx", "r_n"],
                        live_outs=["r_valpred", "r_index"])
    b.mem("indata", MAX_N, ptr="p_in")
    b.mem("outdata", MAX_N, ptr="p_out")
    b.mem("step_table", len(STEP_TABLE), ptr="p_step")
    b.mem("index_table", len(INDEX_TABLE), ptr="p_idx")

    b.label("entry")
    b.movi("r_valpred", 0)
    b.movi("r_index", 0)
    b.load("r_step", "p_step", 0, region="step_table")
    b.movi("r_i", 0)
    b.jmp("loop")

    b.label("loop")
    b.cmplt("r_c", "r_i", "r_n")
    b.br("r_c", "body", "done")

    b.label("body")
    b.add("r_pa", "p_in", "r_i")
    b.load("r_delta", "r_pa", 0, region="indata")
    b.and_("r_delta", "r_delta", 15)
    # index += indexTable[delta]; clamp to [0, 88]
    b.add("r_pt", "p_idx", "r_delta")
    b.load("r_ix", "r_pt", 0, region="index_table")
    b.add("r_index", "r_index", "r_ix")
    b.max("r_index", "r_index", 0)
    b.min("r_index", "r_index", 88)
    # sign / magnitude split
    b.and_("r_sign", "r_delta", 8)
    b.and_("r_mag", "r_delta", 7)
    # vpdiff = step>>3 (+ step if bit2) (+ step>>1 if bit1) (+ step>>2 if b0)
    b.shr("r_vpdiff", "r_step", 3)
    b.and_("r_b4", "r_mag", 4)
    b.br("r_b4", "bit4", "after4")
    b.label("bit4")
    b.add("r_vpdiff", "r_vpdiff", "r_step")
    b.jmp("after4")
    b.label("after4")
    b.and_("r_b2", "r_mag", 2)
    b.br("r_b2", "bit2", "after2")
    b.label("bit2")
    b.shr("r_h", "r_step", 1)
    b.add("r_vpdiff", "r_vpdiff", "r_h")
    b.jmp("after2")
    b.label("after2")
    b.and_("r_b1", "r_mag", 1)
    b.br("r_b1", "bit1", "after1")
    b.label("bit1")
    b.shr("r_q", "r_step", 2)
    b.add("r_vpdiff", "r_vpdiff", "r_q")
    b.jmp("after1")
    b.label("after1")
    b.br("r_sign", "negate", "accum")
    b.label("negate")
    b.sub("r_valpred", "r_valpred", "r_vpdiff")
    b.jmp("clamp")
    b.label("accum")
    b.add("r_valpred", "r_valpred", "r_vpdiff")
    b.jmp("clamp")
    b.label("clamp")
    b.max("r_valpred", "r_valpred", -32768)
    b.min("r_valpred", "r_valpred", 32767)
    # step = stepsizeTable[index]; out[i] = valpred
    b.add("r_ps", "p_step", "r_index")
    b.load("r_step", "r_ps", 0, region="step_table")
    b.add("r_po", "p_out", "r_i")
    b.store("r_po", "r_valpred", 0, region="outdata")
    b.add("r_i", "r_i", 1)
    b.jmp("loop")

    b.label("done")
    b.exit()
    return b.build()


def build_coder() -> Function:
    b = FunctionBuilder("adpcm_coder",
                        params=["p_in", "p_out", "p_step", "p_idx", "r_n"],
                        live_outs=["r_valpred", "r_index"])
    b.mem("indata", MAX_N, ptr="p_in")
    b.mem("outdata", MAX_N, ptr="p_out")
    b.mem("step_table", len(STEP_TABLE), ptr="p_step")
    b.mem("index_table", len(INDEX_TABLE), ptr="p_idx")

    b.label("entry")
    b.movi("r_valpred", 0)
    b.movi("r_index", 0)
    b.load("r_step", "p_step", 0, region="step_table")
    b.movi("r_i", 0)
    b.jmp("loop")

    b.label("loop")
    b.cmplt("r_c", "r_i", "r_n")
    b.br("r_c", "body", "done")

    b.label("body")
    b.add("r_pa", "p_in", "r_i")
    b.load("r_val", "r_pa", 0, region="indata")
    b.sub("r_diff", "r_val", "r_valpred")
    b.cmplt("r_neg", "r_diff", 0)
    b.br("r_neg", "negdiff", "posdiff")
    b.label("negdiff")
    b.movi("r_sign", 8)
    b.neg("r_diff", "r_diff")
    b.jmp("quant")
    b.label("posdiff")
    b.movi("r_sign", 0)
    b.jmp("quant")

    b.label("quant")
    b.movi("r_delta", 0)
    b.shr("r_vpdiff", "r_step", 3)
    b.mov("r_tstep", "r_step")
    b.cmpge("r_c4", "r_diff", "r_tstep")
    b.br("r_c4", "q4", "q4done")
    b.label("q4")
    b.or_("r_delta", "r_delta", 4)
    b.sub("r_diff", "r_diff", "r_tstep")
    b.add("r_vpdiff", "r_vpdiff", "r_tstep")
    b.jmp("q4done")
    b.label("q4done")
    b.shr("r_tstep", "r_tstep", 1)
    b.cmpge("r_c2", "r_diff", "r_tstep")
    b.br("r_c2", "q2", "q2done")
    b.label("q2")
    b.or_("r_delta", "r_delta", 2)
    b.sub("r_diff", "r_diff", "r_tstep")
    b.add("r_vpdiff", "r_vpdiff", "r_tstep")
    b.jmp("q2done")
    b.label("q2done")
    b.shr("r_tstep", "r_tstep", 1)
    b.cmpge("r_c1", "r_diff", "r_tstep")
    b.br("r_c1", "q1", "q1done")
    b.label("q1")
    b.or_("r_delta", "r_delta", 1)
    b.add("r_vpdiff", "r_vpdiff", "r_tstep")
    b.jmp("q1done")
    b.label("q1done")
    b.br("r_sign", "vneg", "vpos")
    b.label("vneg")
    b.sub("r_valpred", "r_valpred", "r_vpdiff")
    b.jmp("vclamp")
    b.label("vpos")
    b.add("r_valpred", "r_valpred", "r_vpdiff")
    b.jmp("vclamp")
    b.label("vclamp")
    b.max("r_valpred", "r_valpred", -32768)
    b.min("r_valpred", "r_valpred", 32767)
    b.or_("r_delta", "r_delta", "r_sign")
    b.add("r_pt", "p_idx", "r_delta")
    b.load("r_ix", "r_pt", 0, region="index_table")
    b.add("r_index", "r_index", "r_ix")
    b.max("r_index", "r_index", 0)
    b.min("r_index", "r_index", 88)
    b.add("r_ps", "p_step", "r_index")
    b.load("r_step", "r_ps", 0, region="step_table")
    b.add("r_po", "p_out", "r_i")
    b.store("r_po", "r_delta", 0, region="outdata")
    b.add("r_i", "r_i", 1)
    b.jmp("loop")

    b.label("done")
    b.exit()
    return b.build()


# -- reference implementations -----------------------------------------------


def reference_decoder(inputs: WorkloadInputs) -> Dict[str, object]:
    data = inputs.memory["indata"]
    n = inputs.args["r_n"]
    valpred, index = 0, 0
    step = STEP_TABLE[0]
    out = []
    for i in range(n):
        delta = data[i] & 15
        index = max(0, min(88, index + INDEX_TABLE[delta]))
        sign = delta & 8
        mag = delta & 7
        vpdiff = step >> 3
        if mag & 4:
            vpdiff += step
        if mag & 2:
            vpdiff += step >> 1
        if mag & 1:
            vpdiff += step >> 2
        valpred = valpred - vpdiff if sign else valpred + vpdiff
        valpred = max(-32768, min(32767, valpred))
        step = STEP_TABLE[index]
        out.append(valpred)
    return {"r_valpred": valpred, "r_index": index, "outdata": out}


def reference_coder(inputs: WorkloadInputs) -> Dict[str, object]:
    data = inputs.memory["indata"]
    n = inputs.args["r_n"]
    valpred, index = 0, 0
    step = STEP_TABLE[0]
    out = []
    for i in range(n):
        diff = data[i] - valpred
        sign = 8 if diff < 0 else 0
        if sign:
            diff = -diff
        delta = 0
        vpdiff = step >> 3
        tstep = step
        if diff >= tstep:
            delta |= 4
            diff -= tstep
            vpdiff += tstep
        tstep >>= 1
        if diff >= tstep:
            delta |= 2
            diff -= tstep
            vpdiff += tstep
        tstep >>= 1
        if diff >= tstep:
            delta |= 1
            vpdiff += tstep
        valpred = valpred - vpdiff if sign else valpred + vpdiff
        valpred = max(-32768, min(32767, valpred))
        delta |= sign
        index = max(0, min(88, index + INDEX_TABLE[delta]))
        step = STEP_TABLE[index]
        out.append(delta)
    return {"r_valpred": valpred, "r_index": index, "outdata": out}


# -- inputs ----------------------------------------------------------------------


def _decoder_inputs(scale: str) -> WorkloadInputs:
    n = scale_size(scale, train=64, ref=1100)
    rng = rng_for("adpcmdec", scale)
    data = [rng.randrange(0, 16) for _ in range(n)]
    return WorkloadInputs(
        args={"r_n": n},
        memory={"indata": data, "step_table": STEP_TABLE,
                "index_table": INDEX_TABLE})


def _coder_inputs(scale: str) -> WorkloadInputs:
    n = scale_size(scale, train=64, ref=1100)
    rng = rng_for("adpcmenc", scale)
    # A wandering waveform, like speech samples.
    data, value = [], 0
    for _ in range(n):
        value = max(-32768, min(32767, value + rng.randrange(-900, 901)))
        data.append(value)
    return WorkloadInputs(
        args={"r_n": n},
        memory={"indata": data, "step_table": STEP_TABLE,
                "index_table": INDEX_TABLE})


register(Workload(
    name="adpcmdec", benchmark="adpcmdec", function_name="adpcm_decoder",
    exec_percent=100, suite="MediaBench", build=build_decoder,
    make_inputs=_decoder_inputs, reference=reference_decoder,
    output_objects=("outdata",),
    description="IMA ADPCM decode: serial predictor recurrence"))

register(Workload(
    name="adpcmenc", benchmark="adpcmenc", function_name="adpcm_coder",
    exec_percent=100, suite="MediaBench", build=build_coder,
    make_inputs=_coder_inputs, reference=reference_coder,
    output_objects=("outdata",),
    description="IMA ADPCM encode: quantizer with data-dependent branches"))
