"""SPEC ``435.gromacs``: ``inl1130`` (75% of execution).

The water-water non-bonded inner loop: for each j-neighbor, compute the
oxygen-oxygen interaction (Lennard-Jones + Coulomb) and the two
oxygen-hydrogen Coulomb interactions, each needing a reciprocal square
root, and accumulate forces on both molecules.  (The original unrolls all
nine site pairs; three capture the structure — dense dependent FP chains
with reciprocal square roots — at a third of the code size.)
"""

from __future__ import annotations

import math
from typing import Dict

from ..ir.builder import FunctionBuilder
from ..ir.cfg import Function
from .common import (Workload, WorkloadInputs, register, rng_for,
                     scale_size)

MAX_SITES = 512


def _site_interaction(b: FunctionBuilder, tag: int, qq_reg: str,
                      with_lj: bool, ix: str, iy: str, iz: str,
                      offset: int) -> None:
    """Emit one site-site interaction against j-site ``j3+offset``."""
    s = "_%d" % tag
    b.add("r_pjx" + s, "p_x", "r_j3")
    b.load("r_jx" + s, "r_pjx" + s, offset, region="sx")
    b.add("r_pjy" + s, "p_y", "r_j3")
    b.load("r_jy" + s, "r_pjy" + s, offset, region="sy")
    b.add("r_pjz" + s, "p_z", "r_j3")
    b.load("r_jz" + s, "r_pjz" + s, offset, region="sz")
    b.fsub("r_dx" + s, ix, "r_jx" + s)
    b.fsub("r_dy" + s, iy, "r_jy" + s)
    b.fsub("r_dz" + s, iz, "r_jz" + s)
    b.fmul("r_r2" + s, "r_dx" + s, "r_dx" + s)
    b.fmul("r_t" + s, "r_dy" + s, "r_dy" + s)
    b.fadd("r_r2" + s, "r_r2" + s, "r_t" + s)
    b.fmul("r_u" + s, "r_dz" + s, "r_dz" + s)
    b.fadd("r_r2" + s, "r_r2" + s, "r_u" + s)
    b.fsqrt("r_r" + s, "r_r2" + s)
    b.fdiv("r_rinv" + s, "r_one", "r_r" + s)
    b.fmul("r_rinvsq" + s, "r_rinv" + s, "r_rinv" + s)
    b.fmul("r_vcoul" + s, qq_reg, "r_rinv" + s)
    if with_lj:
        b.fmul("r_r6" + s, "r_rinvsq" + s, "r_rinvsq" + s)
        b.fmul("r_r6" + s, "r_r6" + s, "r_rinvsq" + s)
        b.fmul("r_vlj" + s, "r_r6" + s, "r_r6" + s)
        b.fsub("r_vlj" + s, "r_vlj" + s, "r_r6" + s)
        b.fadd("r_vtot" + s, "r_vcoul" + s, "r_vlj" + s)
    else:
        b.mov("r_vtot" + s, "r_vcoul" + s)
    b.fadd("r_vnbtot", "r_vnbtot", "r_vtot" + s)
    b.fmul("r_fs" + s, "r_vtot" + s, "r_rinvsq" + s)
    # Accumulate the i-side force; scatter the j-side reaction force.
    b.fmul("r_fxv" + s, "r_fs" + s, "r_dx" + s)
    b.fadd("r_fix", "r_fix", "r_fxv" + s)
    b.add("r_pfx" + s, "p_fx", "r_j3")
    b.load("r_ofx" + s, "r_pfx" + s, offset, region="sfx")
    b.fsub("r_ofx" + s, "r_ofx" + s, "r_fxv" + s)
    b.store("r_pfx" + s, "r_ofx" + s, offset, region="sfx")
    b.fmul("r_fyv" + s, "r_fs" + s, "r_dy" + s)
    b.fadd("r_fiy", "r_fiy", "r_fyv" + s)
    b.add("r_pfy" + s, "p_fy", "r_j3")
    b.load("r_ofy" + s, "r_pfy" + s, offset, region="sfy")
    b.fsub("r_ofy" + s, "r_ofy" + s, "r_fyv" + s)
    b.store("r_pfy" + s, "r_ofy" + s, offset, region="sfy")
    b.fmul("r_fzv" + s, "r_fs" + s, "r_dz" + s)
    b.fadd("r_fiz", "r_fiz", "r_fzv" + s)
    b.add("r_pfz" + s, "p_fz", "r_j3")
    b.load("r_ofz" + s, "r_pfz" + s, offset, region="sfz")
    b.fsub("r_ofz" + s, "r_ofz" + s, "r_fzv" + s)
    b.store("r_pfz" + s, "r_ofz" + s, offset, region="sfz")


def build() -> Function:
    b = FunctionBuilder(
        "inl1130",
        params=["p_jjnr", "p_x", "p_y", "p_z", "p_fx", "p_fy", "p_fz",
                "r_nj", "r_ix", "r_iy", "r_iz", "r_qqOO", "r_qqOH"],
        live_outs=["r_vnbtot", "r_fix", "r_fiy", "r_fiz"])
    b.mem("jjnr", MAX_SITES, ptr="p_jjnr")
    b.mem("sx", MAX_SITES * 3, ptr="p_x")
    b.mem("sy", MAX_SITES * 3, ptr="p_y")
    b.mem("sz", MAX_SITES * 3, ptr="p_z")
    b.mem("sfx", MAX_SITES * 3, ptr="p_fx")
    b.mem("sfy", MAX_SITES * 3, ptr="p_fy")
    b.mem("sfz", MAX_SITES * 3, ptr="p_fz")

    b.label("entry")
    b.movi("r_vnbtot", 0.0)
    b.movi("r_one", 1.0)
    b.movi("r_fix", 0.0)
    b.movi("r_fiy", 0.0)
    b.movi("r_fiz", 0.0)
    b.movi("r_k", 0)
    b.jmp("jloop")

    b.label("jloop")
    b.cmplt("r_c", "r_k", "r_nj")
    b.br("r_c", "jbody", "done")

    b.label("jbody")
    b.add("r_pj", "p_jjnr", "r_k")
    b.load("r_jnr", "r_pj", 0, region="jjnr")
    b.mul("r_j3", "r_jnr", 3)
    # O-O (LJ + Coulomb), O-H1, O-H2 (Coulomb only).
    _site_interaction(b, 0, "r_qqOO", True, "r_ix", "r_iy", "r_iz", 0)
    _site_interaction(b, 1, "r_qqOH", False, "r_ix", "r_iy", "r_iz", 1)
    _site_interaction(b, 2, "r_qqOH", False, "r_ix", "r_iy", "r_iz", 2)
    b.add("r_k", "r_k", 1)
    b.jmp("jloop")

    b.label("done")
    b.exit()
    return b.build()


def reference(inputs: WorkloadInputs) -> Dict[str, object]:
    mem = inputs.memory
    args = inputs.args
    fx = list(mem["sfx"])
    fy = list(mem["sfy"])
    fz = list(mem["sfz"])
    vnbtot = 0.0
    fix = fiy = fiz = 0.0
    for k in range(args["r_nj"]):
        j3 = mem["jjnr"][k] * 3
        for site, (qq, with_lj) in enumerate(
                [(args["r_qqOO"], True), (args["r_qqOH"], False),
                 (args["r_qqOH"], False)]):
            dx = args["r_ix"] - mem["sx"][j3 + site]
            dy = args["r_iy"] - mem["sy"][j3 + site]
            dz = args["r_iz"] - mem["sz"][j3 + site]
            r2 = dx * dx + dy * dy
            r2 = r2 + dz * dz
            rinv = 1.0 / math.sqrt(r2)
            rinvsq = rinv * rinv
            vcoul = qq * rinv
            if with_lj:
                r6 = rinvsq * rinvsq * rinvsq
                vtot = vcoul + (r6 * r6 - r6)
            else:
                vtot = vcoul
            vnbtot += vtot
            fs = vtot * rinvsq
            fxv, fyv, fzv = fs * dx, fs * dy, fs * dz
            fix += fxv
            fiy += fyv
            fiz += fzv
            fx[j3 + site] -= fxv
            fy[j3 + site] -= fyv
            fz[j3 + site] -= fzv
    return {"r_vnbtot": vnbtot, "r_fix": fix, "r_fiy": fiy, "r_fiz": fiz,
            "sfx": fx, "sfy": fy, "sfz": fz}


def _inputs(scale: str) -> WorkloadInputs:
    nj = scale_size(scale, train=20, ref=240)
    n_mols = nj + 4
    rng = rng_for("gromacs", scale)
    jjnr = [rng.randrange(0, n_mols) for _ in range(nj)]
    jjnr += [0] * (MAX_SITES - nj)
    coords = lambda: [rng.uniform(1.0, 9.0) for _ in range(n_mols * 3)] + \
        [0.0] * (MAX_SITES * 3 - n_mols * 3)
    return WorkloadInputs(
        args={"r_nj": nj, "r_ix": 5.0, "r_iy": 5.0, "r_iz": 5.0,
              "r_qqOO": 0.7, "r_qqOH": -0.35},
        memory={"jjnr": jjnr, "sx": coords(), "sy": coords(),
                "sz": coords(), "sfx": [0.0] * MAX_SITES * 3,
                "sfy": [0.0] * MAX_SITES * 3,
                "sfz": [0.0] * MAX_SITES * 3})


register(Workload(
    name="435.gromacs", benchmark="435.gromacs", function_name="inl1130",
    exec_percent=75, suite="SPEC-CPU", build=build,
    make_inputs=_inputs, reference=reference,
    output_objects=("sfx", "sfy", "sfz"),
    description="water-water non-bonded inner loop (3 site pairs)"))
