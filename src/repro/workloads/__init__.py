"""The benchmark suite: the papers' evaluated functions as IR kernels."""

from .common import (Workload, WorkloadInputs, all_workloads,
                     benchmark_table, get_workload, register,
                     unknown_workload_message, workload_names)

__all__ = [
    "Workload", "WorkloadInputs", "all_workloads", "benchmark_table",
    "get_workload", "register", "unknown_workload_message",
    "workload_names",
]
