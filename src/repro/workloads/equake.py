"""SPEC ``183.equake``: ``smvp`` (63% of execution).

Sparse matrix-vector product in the earthquake simulator: CSR traversal
with indirect loads, floating-point multiply-accumulate, and the
symmetric scatter update ``w[col] += A[k] * v[i]`` that creates
loop-carried memory dependences through ``w``.
"""

from __future__ import annotations

from typing import Dict, List

from ..ir.builder import FunctionBuilder
from ..ir.cfg import Function
from .common import (Workload, WorkloadInputs, register, rng_for,
                     scale_size)

MAX_NODES = 256
MAX_NNZ = 2048


def build() -> Function:
    b = FunctionBuilder(
        "smvp",
        params=["p_aindex", "p_acol", "p_aval", "p_v", "p_w", "r_nodes"],
        live_outs=[])
    b.mem("aindex", MAX_NODES + 1, ptr="p_aindex")
    b.mem("acol", MAX_NNZ, ptr="p_acol")
    b.mem("aval", MAX_NNZ, ptr="p_aval")
    b.mem("vvec", MAX_NODES, ptr="p_v")
    b.mem("wvec", MAX_NODES, ptr="p_w")

    b.label("entry")
    b.movi("r_i", 0)
    b.jmp("rows")

    b.label("rows")
    b.cmplt("r_c", "r_i", "r_nodes")
    b.br("r_c", "row", "done")

    b.label("row")
    b.add("r_pi", "p_aindex", "r_i")
    b.load("r_anext", "r_pi", 0, region="aindex")
    b.load("r_alast", "r_pi", 1, region="aindex")
    b.add("r_pv", "p_v", "r_i")
    b.load("r_vi", "r_pv", 0, region="vvec")
    # sum = A[anext] * v[i]   (diagonal element first)
    b.add("r_pa", "p_aval", "r_anext")
    b.load("r_adiag", "r_pa", 0, region="aval")
    b.fmul("r_sum", "r_adiag", "r_vi")
    b.add("r_k", "r_anext", 1)
    b.jmp("cols")

    b.label("cols")
    b.cmplt("r_ck", "r_k", "r_alast")
    b.br("r_ck", "col", "row_done")

    b.label("col")
    b.add("r_pc", "p_acol", "r_k")
    b.load("r_col", "r_pc", 0, region="acol")
    b.add("r_pak", "p_aval", "r_k")
    b.load("r_a", "r_pak", 0, region="aval")
    b.add("r_pvc", "p_v", "r_col")
    b.load("r_vcol", "r_pvc", 0, region="vvec")
    b.fmul("r_t", "r_a", "r_vcol")
    b.fadd("r_sum", "r_sum", "r_t")
    # Symmetric update: w[col] += A[k] * v[i]
    b.fmul("r_u", "r_a", "r_vi")
    b.add("r_pwc", "p_w", "r_col")
    b.load("r_wcol", "r_pwc", 0, region="wvec")
    b.fadd("r_wcol", "r_wcol", "r_u")
    b.store("r_pwc", "r_wcol", 0, region="wvec")
    b.add("r_k", "r_k", 1)
    b.jmp("cols")

    b.label("row_done")
    b.add("r_pw", "p_w", "r_i")
    b.load("r_wi", "r_pw", 0, region="wvec")
    b.fadd("r_wi", "r_wi", "r_sum")
    b.store("r_pw", "r_wi", 0, region="wvec")
    b.add("r_i", "r_i", 1)
    b.jmp("rows")

    b.label("done")
    b.exit()
    return b.build()


def reference(inputs: WorkloadInputs) -> Dict[str, object]:
    aindex = inputs.memory["aindex"]
    acol = inputs.memory["acol"]
    aval = inputs.memory["aval"]
    v = inputs.memory["vvec"]
    w = list(inputs.memory["wvec"])
    nodes = inputs.args["r_nodes"]
    for i in range(nodes):
        anext, alast = aindex[i], aindex[i + 1]
        total = aval[anext] * v[i]
        for k in range(anext + 1, alast):
            col = acol[k]
            total += aval[k] * v[col]
            w[col] += aval[k] * v[i]
        w[i] += total
    return {"wvec": w}


def _inputs(scale: str) -> WorkloadInputs:
    nodes = scale_size(scale, train=20, ref=150)
    per_row = scale_size(scale, train=4, ref=8)
    rng = rng_for("equake", scale)
    aindex: List[int] = [0] * (MAX_NODES + 1)
    acol: List[int] = [0] * MAX_NNZ
    aval: List[float] = [0.0] * MAX_NNZ
    k = 0
    for i in range(nodes):
        aindex[i] = k
        # Diagonal entry first, then strictly-upper random columns.
        acol[k] = i
        aval[k] = rng.uniform(1.0, 4.0)
        k += 1
        n_off = rng.randrange(1, per_row + 1)
        columns = sorted({rng.randrange(i + 1, nodes)
                          for _ in range(n_off)} - {i}) if i + 1 < nodes \
            else []
        for col in columns:
            acol[k] = col
            aval[k] = rng.uniform(-1.0, 1.0)
            k += 1
    aindex[nodes] = k
    v = [rng.uniform(-2.0, 2.0) for _ in range(nodes)]
    v += [0.0] * (MAX_NODES - nodes)
    return WorkloadInputs(
        args={"r_nodes": nodes},
        memory={"aindex": aindex, "acol": acol, "aval": aval,
                "vvec": v, "wvec": [0.0] * MAX_NODES})


register(Workload(
    name="183.equake", benchmark="183.equake", function_name="smvp",
    exec_percent=63, suite="SPEC-CPU", build=build,
    make_inputs=_inputs, reference=reference,
    output_objects=("wvec",),
    description="symmetric sparse matrix-vector product (CSR)"))
