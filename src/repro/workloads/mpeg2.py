"""MediaBench ``mpeg2enc``: ``dist1`` (58% of execution).

Sum-of-absolute-differences between a candidate and a reference 16-wide
block, with the original's early-exit test against ``distlim`` after each
row — a data-dependent loop exit that makes the control flow irregular.
(The half-pel interpolation variants of the original are not modeled; the
common integer-pel path dominates.)
"""

from __future__ import annotations

from typing import Dict

from ..ir.builder import FunctionBuilder
from ..ir.cfg import Function
from .common import (Workload, WorkloadInputs, register, rng_for,
                     scale_size)

WIDTH = 16
MAX_PIX = 16 * 64


def build() -> Function:
    b = FunctionBuilder(
        "dist1",
        params=["p_blk1", "p_blk2", "r_lx", "r_h", "r_distlim"],
        live_outs=["r_s"])
    b.mem("blk1", MAX_PIX, ptr="p_blk1")
    b.mem("blk2", MAX_PIX, ptr="p_blk2")

    b.label("entry")
    b.movi("r_s", 0)
    b.movi("r_j", 0)
    b.mov("r_row1", "p_blk1")
    b.mov("r_row2", "p_blk2")
    b.jmp("rows")

    b.label("rows")
    b.cmplt("r_cj", "r_j", "r_h")
    b.br("r_cj", "row_body", "done")

    b.label("row_body")
    b.movi("r_i", 0)
    b.jmp("cols")

    b.label("cols")
    b.cmplt("r_ci", "r_i", WIDTH)
    b.br("r_ci", "col_body", "row_latch")

    b.label("col_body")
    b.add("r_p1", "r_row1", "r_i")
    b.load("r_v1", "r_p1", 0, region="blk1")
    b.add("r_p2", "r_row2", "r_i")
    b.load("r_v2", "r_p2", 0, region="blk2")
    b.sub("r_v", "r_v1", "r_v2")
    b.abs("r_v", "r_v")
    b.add("r_s", "r_s", "r_v")
    b.add("r_i", "r_i", 1)
    b.jmp("cols")

    b.label("row_latch")
    # Early exit: if s > distlim, stop scanning rows.
    b.cmpgt("r_over", "r_s", "r_distlim")
    b.br("r_over", "done", "next_row")
    b.label("next_row")
    b.add("r_row1", "r_row1", "r_lx")
    b.add("r_row2", "r_row2", "r_lx")
    b.add("r_j", "r_j", 1)
    b.jmp("rows")

    b.label("done")
    b.exit()
    return b.build()


def reference(inputs: WorkloadInputs) -> Dict[str, object]:
    blk1 = inputs.memory["blk1"]
    blk2 = inputs.memory["blk2"]
    lx = inputs.args["r_lx"]
    h = inputs.args["r_h"]
    distlim = inputs.args["r_distlim"]
    s = 0
    for j in range(h):
        for i in range(WIDTH):
            s += abs(blk1[j * lx + i] - blk2[j * lx + i])
        if s > distlim:
            break
    return {"r_s": s}


def _inputs(scale: str) -> WorkloadInputs:
    h = scale_size(scale, train=8, ref=16)
    repeats = scale_size(scale, train=2, ref=4)
    del repeats  # single call; the driver may loop externally
    rng = rng_for("mpeg2enc", scale)
    lx = WIDTH
    pixels = lx * h
    blk1 = [rng.randrange(0, 256) for _ in range(pixels)]
    # blk2 is a noisy copy so the SAD is small and the early exit is rare
    # but reachable (as in real motion estimation).
    blk2 = [max(0, min(255, value + rng.randrange(-12, 13)))
            for value in blk1]
    return WorkloadInputs(
        args={"r_lx": lx, "r_h": h, "r_distlim": 32 * h * 4},
        memory={"blk1": blk1, "blk2": blk2})


register(Workload(
    name="mpeg2enc", benchmark="mpeg2enc", function_name="dist1",
    exec_percent=58, suite="MediaBench", build=build,
    make_inputs=_inputs, reference=reference,
    description="16-wide SAD with early exit (motion estimation)"))
