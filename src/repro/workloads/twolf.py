"""SPEC ``300.twolf``: ``new_dbox_a`` (30% of execution).

The placer's net bounding-box cost recomputation: for each net attached to
a moved cell, rescan the net's terminals, rebuild the bounding box with
running min/max updates (data-dependent branches in the original), and
accumulate the half-perimeter wire-length delta against the old cost.
"""

from __future__ import annotations

from typing import Dict, List

from ..ir.builder import FunctionBuilder
from ..ir.cfg import Function
from .common import (Workload, WorkloadInputs, register, rng_for,
                     scale_size)

MAX_NETS = 64
MAX_TERMS = 1024


def build() -> Function:
    b = FunctionBuilder(
        "new_dbox_a",
        params=["p_netptr", "p_termx", "p_termy", "p_oldcost", "r_nnets"],
        live_outs=["r_delta"])
    b.mem("netptr", MAX_NETS + 1, ptr="p_netptr")
    b.mem("termx", MAX_TERMS, ptr="p_termx")
    b.mem("termy", MAX_TERMS, ptr="p_termy")
    b.mem("oldcost", MAX_NETS, ptr="p_oldcost")

    b.label("entry")
    b.movi("r_delta", 0)
    b.movi("r_net", 0)
    b.jmp("nets")

    b.label("nets")
    b.cmplt("r_c", "r_net", "r_nnets")
    b.br("r_c", "net", "done")

    b.label("net")
    b.add("r_pn", "p_netptr", "r_net")
    b.load("r_t", "r_pn", 0, region="netptr")
    b.load("r_tend", "r_pn", 1, region="netptr")
    b.movi("r_xmin", 1000000)
    b.movi("r_xmax", -1000000)
    b.movi("r_ymin", 1000000)
    b.movi("r_ymax", -1000000)
    b.jmp("terms")

    b.label("terms")
    b.cmplt("r_ct", "r_t", "r_tend")
    b.br("r_ct", "term", "net_done")

    b.label("term")
    b.add("r_px", "p_termx", "r_t")
    b.load("r_x", "r_px", 0, region="termx")
    b.add("r_py", "p_termy", "r_t")
    b.load("r_y", "r_py", 0, region="termy")
    # Running bounding-box updates (branches, as in the original).
    b.cmplt("r_bx1", "r_x", "r_xmin")
    b.br("r_bx1", "xmin_upd", "xmin_ok")
    b.label("xmin_upd")
    b.mov("r_xmin", "r_x")
    b.jmp("xmin_ok")
    b.label("xmin_ok")
    b.cmpgt("r_bx2", "r_x", "r_xmax")
    b.br("r_bx2", "xmax_upd", "xmax_ok")
    b.label("xmax_upd")
    b.mov("r_xmax", "r_x")
    b.jmp("xmax_ok")
    b.label("xmax_ok")
    b.cmplt("r_by1", "r_y", "r_ymin")
    b.br("r_by1", "ymin_upd", "ymin_ok")
    b.label("ymin_upd")
    b.mov("r_ymin", "r_y")
    b.jmp("ymin_ok")
    b.label("ymin_ok")
    b.cmpgt("r_by2", "r_y", "r_ymax")
    b.br("r_by2", "ymax_upd", "ymax_ok")
    b.label("ymax_upd")
    b.mov("r_ymax", "r_y")
    b.jmp("ymax_ok")
    b.label("ymax_ok")
    b.add("r_t", "r_t", 1)
    b.jmp("terms")

    b.label("net_done")
    b.sub("r_w", "r_xmax", "r_xmin")
    b.sub("r_h", "r_ymax", "r_ymin")
    b.add("r_newcost", "r_w", "r_h")
    b.add("r_poc", "p_oldcost", "r_net")
    b.load("r_old", "r_poc", 0, region="oldcost")
    b.sub("r_d", "r_newcost", "r_old")
    b.add("r_delta", "r_delta", "r_d")
    b.store("r_poc", "r_newcost", 0, region="oldcost")
    b.add("r_net", "r_net", 1)
    b.jmp("nets")

    b.label("done")
    b.exit()
    return b.build()


def reference(inputs: WorkloadInputs) -> Dict[str, object]:
    netptr = inputs.memory["netptr"]
    termx = inputs.memory["termx"]
    termy = inputs.memory["termy"]
    oldcost = list(inputs.memory["oldcost"])
    nnets = inputs.args["r_nnets"]
    delta = 0
    for net in range(nnets):
        xs = termx[netptr[net]:netptr[net + 1]]
        ys = termy[netptr[net]:netptr[net + 1]]
        xmin, xmax = 1000000, -1000000
        ymin, ymax = 1000000, -1000000
        for x, y in zip(xs, ys):
            xmin, xmax = min(xmin, x), max(xmax, x)
            ymin, ymax = min(ymin, y), max(ymax, y)
        newcost = (xmax - xmin) + (ymax - ymin)
        delta += newcost - oldcost[net]
        oldcost[net] = newcost
    return {"r_delta": delta, "oldcost": oldcost}


def _inputs(scale: str) -> WorkloadInputs:
    nnets = scale_size(scale, train=8, ref=55)
    terms_per_net = scale_size(scale, train=5, ref=16)
    rng = rng_for("twolf", scale)
    netptr: List[int] = [0] * (MAX_NETS + 1)
    termx: List[int] = []
    termy: List[int] = []
    cursor = 0
    for net in range(nnets):
        netptr[net] = cursor
        count = rng.randrange(2, terms_per_net + 1)
        for _ in range(count):
            termx.append(rng.randrange(0, 2000))
            termy.append(rng.randrange(0, 2000))
        cursor += count
    netptr[nnets] = cursor
    termx += [0] * (MAX_TERMS - len(termx))
    termy += [0] * (MAX_TERMS - len(termy))
    return WorkloadInputs(
        args={"r_nnets": nnets},
        memory={"netptr": netptr, "termx": termx, "termy": termy,
                "oldcost": [rng.randrange(100, 3000)
                            for _ in range(MAX_NETS)]})


register(Workload(
    name="300.twolf", benchmark="300.twolf", function_name="new_dbox_a",
    exec_percent=30, suite="SPEC-CPU", build=build,
    make_inputs=_inputs, reference=reference,
    output_objects=("oldcost",),
    description="net bounding-box wire-length recomputation"))
