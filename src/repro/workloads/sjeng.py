"""SPEC ``458.sjeng``: ``std_eval`` (26% of execution).

The chess static evaluator's board scan: for each of the 64 squares,
branch on the piece type, add the piece-square-table bonus and material
value, and apply simple pawn-structure checks (doubled/isolated pawns via
neighboring-file lookups) — a long data-dependent branch chain per
iteration, the most control-heavy kernel in the suite.
"""

from __future__ import annotations

from typing import Dict, List

from ..ir.builder import FunctionBuilder
from ..ir.cfg import Function
from .common import (Workload, WorkloadInputs, register, rng_for,
                     scale_size)

BOARD = 64
EMPTY, WPAWN, WKNIGHT, WBISHOP, WROOK, WQUEEN, WKING = range(7)
BPAWN, BKNIGHT, BBISHOP, BROOK, BQUEEN, BKING = range(7, 13)
MATERIAL = {WPAWN: 100, WKNIGHT: 310, WBISHOP: 325, WROOK: 500,
            WQUEEN: 900, WKING: 0}


def build() -> Function:
    b = FunctionBuilder(
        "std_eval",
        params=["p_board", "p_pst", "p_pawnfile", "r_rounds"],
        live_outs=["r_score"])
    b.mem("board", BOARD, ptr="p_board")
    # One piece-square table per piece kind (13 x 64).
    b.mem("pst", 13 * BOARD, ptr="p_pst")
    b.mem("pawnfile", 16, ptr="p_pawnfile")

    b.label("entry")
    b.movi("r_score", 0)
    b.movi("r_round", 0)
    b.jmp("rounds")

    # The original is called once per node; r_rounds models repeated calls
    # on perturbed boards within the measured region.
    b.label("rounds")
    b.cmplt("r_cr", "r_round", "r_rounds")
    b.br("r_cr", "scan_init", "done")

    b.label("scan_init")
    b.movi("r_sq", 0)
    b.jmp("scan")

    b.label("scan")
    b.cmplt("r_c", "r_sq", BOARD)
    b.br("r_c", "square", "round_latch")

    b.label("square")
    b.add("r_pb", "p_board", "r_sq")
    b.load("r_piece", "r_pb", 0, region="board")
    b.cmpeq("r_isempty", "r_piece", EMPTY)
    b.br("r_isempty", "next_sq", "classify")

    b.label("classify")
    # score += sign * (material[piece] + pst[piece*64 + sq])
    b.mul("r_prow", "r_piece", BOARD)
    b.add("r_pidx", "r_prow", "r_sq")
    b.add("r_ppst", "p_pst", "r_pidx")
    b.load("r_bonus", "r_ppst", 0, region="pst")
    b.cmple("r_iswhite", "r_piece", WKING)
    b.br("r_iswhite", "white_piece", "black_piece")

    b.label("white_piece")
    b.add("r_score", "r_score", "r_bonus")
    b.cmpeq("r_iswp", "r_piece", WPAWN)
    b.br("r_iswp", "white_pawn", "white_major")
    b.label("white_pawn")
    # Doubled/isolated pawn checks via file counters.
    b.and_("r_file", "r_sq", 7)
    b.add("r_ppf", "p_pawnfile", "r_file")
    b.load("r_fcount", "r_ppf", 0, region="pawnfile")
    b.cmpgt("r_doubled", "r_fcount", 0)
    b.br("r_doubled", "penalize_doubled", "count_pawn")
    b.label("penalize_doubled")
    b.sub("r_score", "r_score", 12)
    b.jmp("count_pawn")
    b.label("count_pawn")
    b.add("r_fcount", "r_fcount", 1)
    b.store("r_ppf", "r_fcount", 0, region="pawnfile")
    b.add("r_score", "r_score", 100)
    b.jmp("next_sq")
    b.label("white_major")
    b.cmpeq("r_iswn", "r_piece", WKNIGHT)
    b.br("r_iswn", "white_knight", "white_rest")
    b.label("white_knight")
    b.add("r_score", "r_score", 310)
    b.jmp("next_sq")
    b.label("white_rest")
    b.cmpeq("r_iswb", "r_piece", WBISHOP)
    b.br("r_iswb", "white_bishop", "white_rook_q")
    b.label("white_bishop")
    b.add("r_score", "r_score", 325)
    b.jmp("next_sq")
    b.label("white_rook_q")
    b.cmpeq("r_iswr", "r_piece", WROOK)
    b.br("r_iswr", "white_rook", "white_queen_k")
    b.label("white_rook")
    b.add("r_score", "r_score", 500)
    b.jmp("next_sq")
    b.label("white_queen_k")
    b.cmpeq("r_iswq", "r_piece", WQUEEN)
    b.br("r_iswq", "white_queen", "next_sq")
    b.label("white_queen")
    b.add("r_score", "r_score", 900)
    b.jmp("next_sq")

    b.label("black_piece")
    b.sub("r_score", "r_score", "r_bonus")
    b.sub("r_kind", "r_piece", 6)  # map to white piece kind
    b.cmpeq("r_isbp", "r_kind", WPAWN)
    b.br("r_isbp", "black_pawn", "black_major")
    b.label("black_pawn")
    b.sub("r_score", "r_score", 100)
    b.jmp("next_sq")
    b.label("black_major")
    b.cmpeq("r_isbn", "r_kind", WKNIGHT)
    b.br("r_isbn", "black_knight", "black_rest")
    b.label("black_knight")
    b.sub("r_score", "r_score", 310)
    b.jmp("next_sq")
    b.label("black_rest")
    b.cmpeq("r_isbb", "r_kind", WBISHOP)
    b.br("r_isbb", "black_bishop", "black_rook_q")
    b.label("black_bishop")
    b.sub("r_score", "r_score", 325)
    b.jmp("next_sq")
    b.label("black_rook_q")
    b.cmpeq("r_isbr", "r_kind", WROOK)
    b.br("r_isbr", "black_rook", "black_queen_k")
    b.label("black_rook")
    b.sub("r_score", "r_score", 500)
    b.jmp("next_sq")
    b.label("black_queen_k")
    b.cmpeq("r_isbq", "r_kind", WQUEEN)
    b.br("r_isbq", "black_queen", "next_sq")
    b.label("black_queen")
    b.sub("r_score", "r_score", 900)
    b.jmp("next_sq")

    b.label("next_sq")
    b.add("r_sq", "r_sq", 1)
    b.jmp("scan")

    b.label("round_latch")
    b.add("r_round", "r_round", 1)
    b.jmp("rounds")

    b.label("done")
    b.exit()
    return b.build()


def reference(inputs: WorkloadInputs) -> Dict[str, object]:
    board = inputs.memory["board"]
    pst = inputs.memory["pst"]
    pawnfile = list(inputs.memory["pawnfile"])
    rounds = inputs.args["r_rounds"]
    score = 0
    for _ in range(rounds):
        for sq in range(BOARD):
            piece = board[sq]
            if piece == EMPTY:
                continue
            bonus = pst[piece * BOARD + sq]
            if piece <= WKING:
                score += bonus
                if piece == WPAWN:
                    file_ = sq & 7
                    if pawnfile[file_] > 0:
                        score -= 12
                    pawnfile[file_] += 1
                    score += 100
                elif piece == WKNIGHT:
                    score += 310
                elif piece == WBISHOP:
                    score += 325
                elif piece == WROOK:
                    score += 500
                elif piece == WQUEEN:
                    score += 900
            else:
                score -= bonus
                kind = piece - 6
                if kind == WPAWN:
                    score -= 100
                elif kind == WKNIGHT:
                    score -= 310
                elif kind == WBISHOP:
                    score -= 325
                elif kind == WROOK:
                    score -= 500
                elif kind == WQUEEN:
                    score -= 900
    return {"r_score": score, "pawnfile": pawnfile}


def _inputs(scale: str) -> WorkloadInputs:
    rounds = scale_size(scale, train=2, ref=24)
    rng = rng_for("sjeng", scale)
    pieces = ([WPAWN] * 8 + [BPAWN] * 8
              + [WKNIGHT, WBISHOP, WROOK, WQUEEN, WKING]
              + [BKNIGHT, BBISHOP, BROOK, BQUEEN, BKING])
    board: List[int] = [EMPTY] * BOARD
    squares = list(range(BOARD))
    rng.shuffle(squares)
    for piece, square in zip(pieces, squares):
        board[square] = piece
    pst = [rng.randrange(-20, 21) for _ in range(13 * BOARD)]
    return WorkloadInputs(
        args={"r_rounds": rounds},
        memory={"board": board, "pst": pst, "pawnfile": [0] * 16})


register(Workload(
    name="458.sjeng", benchmark="458.sjeng", function_name="std_eval",
    exec_percent=26, suite="SPEC-CPU", build=build,
    make_inputs=_inputs, reference=reference,
    output_objects=("pawnfile",),
    description="chess static evaluation board scan"))
