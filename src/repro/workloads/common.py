"""Workload infrastructure: the benchmark-function registry.

Each workload reproduces one of the evaluated functions of the papers'
Figure 6(b) — the hot function of a MediaBench / SPEC-CPU /
Pointer-Intensive benchmark — as a mini-IR kernel with the same loop,
branch, and dependence structure, plus a seeded input generator and a pure
Python reference implementation (the oracle the IR version is tested
against).

Inputs come in two scales, mirroring the papers' methodology: ``train``
(used to collect the edge profile) and ``ref`` (used for measurements) —
different seeds and sizes, so profile-guided decisions face realistic
mismatch.
"""

from __future__ import annotations

import difflib
import random
from typing import Callable, Dict, List, Tuple

from ..ir.cfg import Function


class WorkloadInputs:
    """Concrete inputs for one run: scalar args + memory initializers."""

    def __init__(self, args: Dict[str, object],
                 memory: Dict[str, List]):
        self.args = args
        self.memory = memory


class Workload:
    """One benchmark function: IR builder + inputs + reference oracle."""

    def __init__(self, name: str, benchmark: str, function_name: str,
                 exec_percent: int, suite: str,
                 build: Callable[[], Function],
                 make_inputs: Callable[[str], WorkloadInputs],
                 reference: Callable[[WorkloadInputs], Dict[str, object]],
                 output_objects: Tuple[str, ...] = (),
                 description: str = ""):
        self.name = name
        self.benchmark = benchmark
        self.function_name = function_name
        self.exec_percent = exec_percent
        self.suite = suite
        self.build = build
        self._make_inputs = make_inputs
        self._inputs_cache: Dict[str, WorkloadInputs] = {}
        self.reference = reference
        # Memory objects whose final contents are workload outputs (checked
        # against the oracle in addition to live-out registers).
        self.output_objects = output_objects
        self.description = description

    def make_inputs(self, scale: str) -> WorkloadInputs:
        """Inputs for ``scale``, generated once per process.

        The generators are deterministic (seeded by workload name and
        scale) but not cheap — a matrix sweep would otherwise re-run
        them per cell.  Callers receive fresh top-level containers, so
        simulating (which consumes the memory image) or mutating the
        returned maps cannot leak into later evaluations.
        """
        cached = self._inputs_cache.get(scale)
        if cached is None:
            cached = self._make_inputs(scale)
            self._inputs_cache[scale] = cached
        return WorkloadInputs(dict(cached.args),
                              {name: list(values)
                               for name, values in cached.memory.items()})

    def __repr__(self) -> str:  # pragma: no cover
        return "<Workload %s (%s:%s)>" % (self.name, self.benchmark,
                                          self.function_name)


_REGISTRY: Dict[str, Workload] = {}


def register(workload: Workload) -> Workload:
    if workload.name in _REGISTRY:
        raise ValueError("duplicate workload %r" % workload.name)
    _REGISTRY[workload.name] = workload
    return workload


#: Convenience aliases: benchmark family name -> registered kernel.
_ALIASES = {"adpcm": "adpcmdec"}


def get_workload(name: str) -> Workload:
    _ensure_loaded()
    workload = _REGISTRY.get(_ALIASES.get(name, name))
    if workload is not None:
        return workload
    # Inline programs (``--source`` / ``--ir`` / serve bodies) live in a
    # per-process session registry under content-hashed names.
    from .inline import lookup_inline
    inline = lookup_inline(name)
    if inline is not None:
        return inline
    raise KeyError(unknown_workload_message(name))


def unknown_workload_message(name: str) -> str:
    """Error text for an unknown workload, with did-you-mean suggestions."""
    _ensure_loaded()
    candidates = sorted(set(_REGISTRY) | set(_ALIASES))
    close = difflib.get_close_matches(name, candidates, n=3, cutoff=0.6)
    if close:
        hint = "did you mean %s?" % " or ".join(repr(c) for c in close)
    else:
        hint = "see `python -m repro list` for the registry"
    return "unknown workload %r (%s)" % (name, hint)


def all_workloads() -> List[Workload]:
    _ensure_loaded()
    return [_REGISTRY[name] for name in sorted(_REGISTRY)]


def workload_names() -> List[str]:
    _ensure_loaded()
    return sorted(_REGISTRY)


def _ensure_loaded() -> None:
    # Import kernel modules for their registration side effects.
    from . import adpcm, ks, mpeg2, mesa, mcf  # noqa: F401
    from . import equake, ammp, twolf, gromacs, sjeng  # noqa: F401
    from . import synthetic  # noqa: F401


def rng_for(name: str, scale: str) -> random.Random:
    """Deterministic per-workload, per-scale random source."""
    return random.Random("%s/%s" % (name, scale))


def scale_size(scale: str, train: int, ref: int) -> int:
    if scale == "train":
        return train
    if scale == "ref":
        return ref
    raise ValueError("unknown scale %r (use 'train' or 'ref')" % scale)


def benchmark_table() -> str:
    """Render the papers' Figure 6(b): benchmark, function, exec %."""
    _ensure_loaded()
    rows = [("Benchmark", "Function", "Exec. %", "Suite")]
    for workload in all_workloads():
        rows.append((workload.benchmark, workload.function_name,
                     str(workload.exec_percent), workload.suite))
    widths = [max(len(row[i]) for row in rows) for i in range(4)]
    lines = []
    for index, row in enumerate(rows):
        lines.append("  ".join(cell.ljust(widths[i])
                               for i, cell in enumerate(row)))
        if index == 0:
            lines.append("-" * (sum(widths) + 6))
    return "\n".join(lines)
