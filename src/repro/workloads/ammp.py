"""SPEC ``188.ammp``: ``mm_fv_update_nonbon`` (79% of execution).

The molecular-dynamics non-bonded force/potential update over a neighbor
pair list: per pair, a distance computation, a cutoff test, and (inside the
cutoff) a Lennard-Jones-style term with reciprocal square root — heavily
floating-point with a data-dependent branch.
"""

from __future__ import annotations

from typing import Dict

from ..ir.builder import FunctionBuilder
from ..ir.cfg import Function
from .common import (Workload, WorkloadInputs, register, rng_for,
                     scale_size)

MAX_ATOMS = 256
MAX_PAIRS = 2048


def build() -> Function:
    b = FunctionBuilder(
        "mm_fv_update_nonbon",
        params=["p_pi", "p_pj", "p_x", "p_y", "p_z", "p_q",
                "p_fx", "p_fy", "p_fz", "r_npairs", "r_cutoff"],
        live_outs=["r_energy"])
    b.mem("pair_i", MAX_PAIRS, ptr="p_pi")
    b.mem("pair_j", MAX_PAIRS, ptr="p_pj")
    b.mem("ax", MAX_ATOMS, ptr="p_x")
    b.mem("ay", MAX_ATOMS, ptr="p_y")
    b.mem("az", MAX_ATOMS, ptr="p_z")
    b.mem("aq", MAX_ATOMS, ptr="p_q")
    b.mem("fx", MAX_ATOMS, ptr="p_fx")
    b.mem("fy", MAX_ATOMS, ptr="p_fy")
    b.mem("fz", MAX_ATOMS, ptr="p_fz")

    b.label("entry")
    b.movi("r_energy", 0.0)
    b.movi("r_one", 1.0)
    b.movi("r_p", 0)
    b.jmp("pairs")

    b.label("pairs")
    b.cmplt("r_c", "r_p", "r_npairs")
    b.br("r_c", "pair", "done")

    b.label("pair")
    b.add("r_ppi", "p_pi", "r_p")
    b.load("r_i", "r_ppi", 0, region="pair_i")
    b.add("r_ppj", "p_pj", "r_p")
    b.load("r_j", "r_ppj", 0, region="pair_j")
    b.add("r_pxi", "p_x", "r_i")
    b.load("r_xi", "r_pxi", 0, region="ax")
    b.add("r_pxj", "p_x", "r_j")
    b.load("r_xj", "r_pxj", 0, region="ax")
    b.fsub("r_dx", "r_xi", "r_xj")
    b.add("r_pyi", "p_y", "r_i")
    b.load("r_yi", "r_pyi", 0, region="ay")
    b.add("r_pyj", "p_y", "r_j")
    b.load("r_yj", "r_pyj", 0, region="ay")
    b.fsub("r_dy", "r_yi", "r_yj")
    b.add("r_pzi", "p_z", "r_i")
    b.load("r_zi", "r_pzi", 0, region="az")
    b.add("r_pzj", "p_z", "r_j")
    b.load("r_zj", "r_pzj", 0, region="az")
    b.fsub("r_dz", "r_zi", "r_zj")
    b.fmul("r_r2", "r_dx", "r_dx")
    b.fmul("r_t1", "r_dy", "r_dy")
    b.fadd("r_r2", "r_r2", "r_t1")
    b.fmul("r_t2", "r_dz", "r_dz")
    b.fadd("r_r2", "r_r2", "r_t2")
    b.cmplt("r_in", "r_r2", "r_cutoff")
    b.br("r_in", "interact", "next")

    b.label("interact")
    b.fsqrt("r_r", "r_r2")
    b.fdiv("r_rinv", "r_one", "r_r")
    b.fmul("r_r2inv", "r_rinv", "r_rinv")
    b.fmul("r_r6inv", "r_r2inv", "r_r2inv")
    b.fmul("r_r6inv", "r_r6inv", "r_r2inv")
    # Charges and the LJ-style energy: qq*rinv + (r6 - 1)*r6
    b.add("r_pqi", "p_q", "r_i")
    b.load("r_qi", "r_pqi", 0, region="aq")
    b.add("r_pqj", "p_q", "r_j")
    b.load("r_qj", "r_pqj", 0, region="aq")
    b.fmul("r_qq", "r_qi", "r_qj")
    b.fmul("r_vcoul", "r_qq", "r_rinv")
    b.fsub("r_ljt", "r_r6inv", 1.0)
    b.fmul("r_vlj", "r_ljt", "r_r6inv")
    b.fadd("r_vtot", "r_vcoul", "r_vlj")
    b.fadd("r_energy", "r_energy", "r_vtot")
    # Force magnitude along each axis: f = vtot * r2inv
    b.fmul("r_f", "r_vtot", "r_r2inv")
    b.fmul("r_fxv", "r_f", "r_dx")
    b.add("r_pfi", "p_fx", "r_i")
    b.load("r_fxi", "r_pfi", 0, region="fx")
    b.fadd("r_fxi", "r_fxi", "r_fxv")
    b.store("r_pfi", "r_fxi", 0, region="fx")
    b.add("r_pfj", "p_fx", "r_j")
    b.load("r_fxj", "r_pfj", 0, region="fx")
    b.fsub("r_fxj", "r_fxj", "r_fxv")
    b.store("r_pfj", "r_fxj", 0, region="fx")
    b.fmul("r_fyv", "r_f", "r_dy")
    b.add("r_pfyi", "p_fy", "r_i")
    b.load("r_fyi", "r_pfyi", 0, region="fy")
    b.fadd("r_fyi", "r_fyi", "r_fyv")
    b.store("r_pfyi", "r_fyi", 0, region="fy")
    b.add("r_pfyj", "p_fy", "r_j")
    b.load("r_fyj", "r_pfyj", 0, region="fy")
    b.fsub("r_fyj", "r_fyj", "r_fyv")
    b.store("r_pfyj", "r_fyj", 0, region="fy")
    b.fmul("r_fzv", "r_f", "r_dz")
    b.add("r_pfzi", "p_fz", "r_i")
    b.load("r_fzi", "r_pfzi", 0, region="fz")
    b.fadd("r_fzi", "r_fzi", "r_fzv")
    b.store("r_pfzi", "r_fzi", 0, region="fz")
    b.add("r_pfzj", "p_fz", "r_j")
    b.load("r_fzj", "r_pfzj", 0, region="fz")
    b.fsub("r_fzj", "r_fzj", "r_fzv")
    b.store("r_pfzj", "r_fzj", 0, region="fz")
    b.jmp("next")

    b.label("next")
    b.add("r_p", "r_p", 1)
    b.jmp("pairs")

    b.label("done")
    b.exit()
    return b.build()


def reference(inputs: WorkloadInputs) -> Dict[str, object]:
    mem = inputs.memory
    npairs = inputs.args["r_npairs"]
    cutoff = inputs.args["r_cutoff"]
    fx = list(mem["fx"])
    fy = list(mem["fy"])
    fz = list(mem["fz"])
    energy = 0.0
    for p in range(npairs):
        i, j = mem["pair_i"][p], mem["pair_j"][p]
        dx = mem["ax"][i] - mem["ax"][j]
        dy = mem["ay"][i] - mem["ay"][j]
        dz = mem["az"][i] - mem["az"][j]
        r2 = dx * dx + dy * dy + dz * dz
        if r2 < cutoff:
            import math
            rinv = 1.0 / math.sqrt(r2)
            r2inv = rinv * rinv
            r6inv = r2inv * r2inv * r2inv
            qq = mem["aq"][i] * mem["aq"][j]
            vtot = qq * rinv + (r6inv - 1.0) * r6inv
            energy += vtot
            f = vtot * r2inv
            fx[i] += f * dx
            fx[j] -= f * dx
            fy[i] += f * dy
            fy[j] -= f * dy
            fz[i] += f * dz
            fz[j] -= f * dz
    return {"r_energy": energy, "fx": fx, "fy": fy, "fz": fz}


def _inputs(scale: str) -> WorkloadInputs:
    n_atoms = scale_size(scale, train=30, ref=150)
    n_pairs = scale_size(scale, train=70, ref=900)
    rng = rng_for("ammp", scale)
    coords = lambda: [rng.uniform(0.0, 6.0) for _ in range(n_atoms)] + \
        [0.0] * (MAX_ATOMS - n_atoms)
    pair_i, pair_j = [], []
    for _ in range(n_pairs):
        i = rng.randrange(0, n_atoms)
        j = rng.randrange(0, n_atoms)
        if i == j:
            j = (j + 1) % n_atoms
        pair_i.append(i)
        pair_j.append(j)
    return WorkloadInputs(
        args={"r_npairs": n_pairs, "r_cutoff": 9.0},
        memory={"pair_i": pair_i, "pair_j": pair_j,
                "ax": coords(), "ay": coords(), "az": coords(),
                "aq": [rng.uniform(-0.8, 0.8) for _ in range(n_atoms)],
                "fx": [0.0] * MAX_ATOMS, "fy": [0.0] * MAX_ATOMS,
                "fz": [0.0] * MAX_ATOMS})


register(Workload(
    name="188.ammp", benchmark="188.ammp",
    function_name="mm_fv_update_nonbon",
    exec_percent=79, suite="SPEC-CPU", build=build,
    make_inputs=_inputs, reference=reference,
    output_objects=("fx", "fy", "fz"),
    description="non-bonded force update over a neighbor list"))
