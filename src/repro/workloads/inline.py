"""Session registry for inline programs (``ProgramSpec`` ir/source).

Inline programs arrive as text — IR through ``--ir FILE.ir`` or the
serve JSON schema, Python source through ``--source FILE.py`` or the
frontend — and materialize here as ordinary :class:`Workload` objects
under content-hashed names (``inline-py-<digest>`` /
``inline-ir-<digest>``).  :func:`repro.workloads.get_workload` consults
this registry after the static one, so the whole pipeline (stages,
matrix cells, artifact cache, service workers) treats inline programs
exactly like registered workloads.  The registry is per-process: a
request's ``validate()`` materializes its program, which covers both
the parent process and ``repro serve`` workers (each worker re-validates
the request dict it receives).

Inputs are deterministic in the content hash and the scale, so repeated
evaluations — and the single- vs multi-threaded differential check —
see identical data.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..ir.cfg import Function
from .common import Workload, WorkloadInputs, rng_for

_INLINE: Dict[str, Workload] = {}


def lookup_inline(name: str) -> Optional[Workload]:
    return _INLINE.get(name)


def inline_names() -> List[str]:
    return sorted(_INLINE)


def materialize_program(spec) -> Workload:
    """Materialize a :class:`~repro.api.types.ProgramSpec` (kind ``ir``
    or ``source``) into the session registry; idempotent per content.
    Raises :class:`~repro.api.types.RequestValidationError` when the
    program does not compile, parse, or verify."""
    from ..api.types import RequestValidationError
    name = spec.workload_name()
    existing = _INLINE.get(name)
    if existing is not None:
        return existing
    if spec.kind == "source":
        workload = source_workload(name, spec.value, spec.name)
    elif spec.kind == "ir":
        workload = _ir_workload(name, spec.value)
    else:
        raise RequestValidationError(
            "program kind %r does not materialize" % (spec.kind,))
    _INLINE[name] = workload
    return workload


def _reject(error) -> "Exception":
    from ..api.types import RequestValidationError
    return RequestValidationError("invalid inline program: %s" % error)


# ---------------------------------------------------------------------------
# Python-source programs (via repro.frontend).

class _SourceProgram:
    """Picklable build/make_inputs/reference callables for a
    frontend-compiled program.  ``evaluate_matrix --jobs`` ships
    :class:`Workload` objects (inside results) across the worker pool,
    so these must be bound methods of a plain-data instance, not
    closures.  The compiled form is memoized per process and dropped
    from the pickle."""

    def __init__(self, workload_name: str, text: str,
                 function_name: Optional[str],
                 scale_args: Optional[Dict[str, Dict[str, int]]]):
        self.workload_name = workload_name
        self.text = text
        self.function_name = function_name
        self.scale_args = scale_args or {}
        self._memo = None

    def __getstate__(self):
        state = dict(self.__dict__)
        state["_memo"] = None
        return state

    def compiled(self):
        if self._memo is None:
            from ..frontend import compile_source
            self._memo = compile_source(self.text,
                                        name=self.function_name)
        return self._memo

    def build(self) -> Function:
        # A fresh Function each time: pipeline stages normalize and
        # annotate in place, so builds must not share structure.
        from ..frontend import compile_source
        return compile_source(self.text, name=self.function_name).function

    def make_inputs(self, scale: str) -> WorkloadInputs:
        from ..frontend import random_inputs
        args, arrays = random_inputs(
            self.compiled(), rng_for(self.workload_name, scale))
        args.update(self.scale_args.get(scale, {}))
        return WorkloadInputs(args=args, memory=arrays)

    def reference(self, inputs: WorkloadInputs) -> Dict[str, object]:
        from ..frontend import python_callable
        program = self.compiled()
        fn = python_callable(self.text, name=program.name)
        arrays = {k: list(v) for k, v in inputs.memory.items()}
        ordered = [arrays[p.name] if p.kind == "array"
                   else inputs.args[p.name] for p in program.params]
        result = fn(*ordered)
        if program.n_returns == 0:
            values = ()
        elif not isinstance(result, tuple):
            values = (result,)
        else:
            values = result
        out: Dict[str, object] = {
            "__ret%d" % index: value
            for index, value in enumerate(values)}
        out.update(arrays)
        return out


def source_workload(name: str, text: str,
                    function_name: Optional[str] = None,
                    benchmark: str = "inline", suite: str = "inline",
                    exec_percent: int = 100,
                    description: str = "inline Python program "
                                       "(repro.frontend)",
                    scale_args: Optional[Dict[str, Dict[str, int]]] = None,
                    ) -> Workload:
    """A :class:`Workload` whose kernel is frontend-compiled Python
    source and whose oracle is CPython itself.  Shared by inline
    ``--source`` programs and the registered ``synthetic`` family.

    ``scale_args`` pins named scalar parameters per scale (overriding
    the seeded random draw), so registered kernels can make ``ref``
    runs strictly larger than ``train`` via an iteration-count
    parameter."""
    from ..frontend import FrontendError, compile_source

    try:
        program = compile_source(text, name=function_name)
    except FrontendError as error:
        raise _reject(error)

    factory = _SourceProgram(name, text, function_name, scale_args)
    return Workload(
        name=name, benchmark=benchmark, function_name=program.name,
        exec_percent=exec_percent, suite=suite, build=factory.build,
        make_inputs=factory.make_inputs, reference=factory.reference,
        output_objects=tuple(p.name for p in program.array_params),
        description=description)


# ---------------------------------------------------------------------------
# Inline textual-IR programs.

class _IrProgram:
    """Picklable counterpart of :class:`_SourceProgram` for raw textual
    IR; the single-threaded reference interpreter *is* the oracle —
    there is no higher-level source of truth."""

    def __init__(self, workload_name: str, text: str,
                 scalar_params: List[str], mem_sizes: Dict[str, int]):
        self.workload_name = workload_name
        self.text = text
        self.scalar_params = scalar_params
        self.mem_sizes = mem_sizes

    def build(self) -> Function:
        from ..ir.parser import parse_function
        return parse_function(self.text)

    def make_inputs(self, scale: str) -> WorkloadInputs:
        rng = rng_for(self.workload_name, scale)
        return WorkloadInputs(
            args={param: rng.randint(-50, 50)
                  for param in self.scalar_params},
            memory={obj: [rng.randint(-50, 50) for _ in range(size)]
                    for obj, size in sorted(self.mem_sizes.items())})

    def reference(self, inputs: WorkloadInputs) -> Dict[str, object]:
        from ..interp.interpreter import run_function
        run = run_function(self.build(), dict(inputs.args),
                           initial_memory={k: list(v) for k, v
                                           in inputs.memory.items()})
        out: Dict[str, object] = dict(run.live_outs)
        for obj in self.mem_sizes:
            out[obj] = run.mem_object(obj)
        return out


def _ir_workload(name: str, text: str) -> Workload:
    from ..ir.builder import BuildError
    from ..ir.parser import ParseError, parse_function
    from ..ir.verify import VerificationError

    try:
        function = parse_function(text)
    except (ParseError, BuildError, VerificationError) as error:
        raise _reject(error)

    scalar_params = [param for param in function.params
                     if param not in function.pointer_params]
    mem_sizes = {obj.name: obj.size
                 for obj in function.mem_objects.values()}
    factory = _IrProgram(name, text, scalar_params, mem_sizes)
    return Workload(
        name=name, benchmark="inline", function_name=function.name,
        exec_percent=100, suite="inline", build=factory.build,
        make_inputs=factory.make_inputs, reference=factory.reference,
        output_objects=tuple(sorted(mem_sizes)),
        description="inline IR program")
