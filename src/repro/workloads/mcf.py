"""SPEC ``181.mcf``: ``refresh_potential`` (32% of execution).

The network-simplex potential refresh: a preorder walk over the spanning
tree stored as ``pred``/``child``/``sibling`` index links, updating each
node's potential from its parent's — a pointer-chasing recurrence feeding
dependent arithmetic, the canonical DSWP-style workload.
"""

from __future__ import annotations

from typing import Dict, List

from ..ir.builder import FunctionBuilder
from ..ir.cfg import Function
from .common import (Workload, WorkloadInputs, register, rng_for,
                     scale_size)

MAX_NODES = 1024
UP = 1


def build() -> Function:
    b = FunctionBuilder(
        "refresh_potential",
        params=["p_pred", "p_child", "p_sib", "p_orient", "p_cost",
                "p_pot", "r_root"],
        live_outs=["r_checksum"])
    b.mem("pred", MAX_NODES, ptr="p_pred")
    b.mem("child", MAX_NODES, ptr="p_child")
    b.mem("sibling", MAX_NODES, ptr="p_sib")
    b.mem("orientation", MAX_NODES, ptr="p_orient")
    b.mem("cost", MAX_NODES, ptr="p_cost")
    b.mem("potential", MAX_NODES, ptr="p_pot")

    b.label("entry")
    b.movi("r_checksum", 0)
    # node = child[root]
    b.add("r_pc", "p_child", "r_root")
    b.load("r_node", "r_pc", 0, region="child")
    b.jmp("visit")

    b.label("visit")
    b.cmpeq("r_end", "r_node", 0)
    b.br("r_end", "done", "compute")

    b.label("compute")
    b.add("r_po", "p_orient", "r_node")
    b.load("r_orient", "r_po", 0, region="orientation")
    b.add("r_pp", "p_pred", "r_node")
    b.load("r_predn", "r_pp", 0, region="pred")
    b.add("r_ppp", "p_pot", "r_predn")
    b.load("r_ppot", "r_ppp", 0, region="potential")
    b.add("r_pcs", "p_cost", "r_node")
    b.load("r_cost", "r_pcs", 0, region="cost")
    b.cmpeq("r_isup", "r_orient", UP)
    b.br("r_isup", "orient_up", "orient_down")

    b.label("orient_up")
    b.add("r_newpot", "r_ppot", "r_cost")
    b.jmp("store_pot")
    b.label("orient_down")
    b.sub("r_newpot", "r_ppot", "r_cost")
    b.add("r_checksum", "r_checksum", 1)
    b.jmp("store_pot")

    b.label("store_pot")
    b.add("r_ppn", "p_pot", "r_node")
    b.store("r_ppn", "r_newpot", 0, region="potential")
    # Advance: descend to child if any, else climb to the next sibling.
    b.add("r_pcn", "p_child", "r_node")
    b.load("r_kid", "r_pcn", 0, region="child")
    b.cmpne("r_haskid", "r_kid", 0)
    b.br("r_haskid", "descend", "climb")

    b.label("descend")
    b.mov("r_node", "r_kid")
    b.jmp("visit")

    b.label("climb")
    b.cmpeq("r_atroot", "r_node", "r_root")
    b.br("r_atroot", "done", "try_sibling")
    b.label("try_sibling")
    b.add("r_ps", "p_sib", "r_node")
    b.load("r_sib", "r_ps", 0, region="sibling")
    b.cmpne("r_hassib", "r_sib", 0)
    b.br("r_hassib", "to_sibling", "to_pred")
    b.label("to_sibling")
    b.mov("r_node", "r_sib")
    b.jmp("visit")
    b.label("to_pred")
    b.add("r_pp2", "p_pred", "r_node")
    b.load("r_node", "r_pp2", 0, region="pred")
    b.jmp("climb")

    b.label("done")
    b.exit()
    return b.build()


def reference(inputs: WorkloadInputs) -> Dict[str, object]:
    pred = inputs.memory["pred"]
    child = inputs.memory["child"]
    sibling = inputs.memory["sibling"]
    orientation = inputs.memory["orientation"]
    cost = inputs.memory["cost"]
    potential = list(inputs.memory["potential"])
    root = inputs.args["r_root"]
    checksum = 0
    node = child[root]
    while node != 0:
        if orientation[node] == UP:
            potential[node] = potential[pred[node]] + cost[node]
        else:
            potential[node] = potential[pred[node]] - cost[node]
            checksum += 1
        if child[node] != 0:
            node = child[node]
            continue
        while True:
            if node == root:
                node = 0
                break
            if sibling[node] != 0:
                node = sibling[node]
                break
            node = pred[node]
    return {"r_checksum": checksum, "potential": potential}


def _random_tree(n: int, rng) -> Dict[str, List[int]]:
    """A random rooted tree over nodes 1..n-1 with node 0 as root, encoded
    as pred/child/sibling index arrays (0 = none)."""
    pred = [0] * MAX_NODES
    child = [0] * MAX_NODES
    sibling = [0] * MAX_NODES
    for node in range(1, n):
        parent = rng.randrange(0, node)
        pred[node] = parent
        # Push-front into the parent's child list.
        sibling[node] = child[parent]
        child[parent] = node
    return {"pred": pred, "child": child, "sibling": sibling}


def _inputs(scale: str) -> WorkloadInputs:
    n = scale_size(scale, train=60, ref=1000)
    rng = rng_for("mcf", scale)
    tree = _random_tree(n, rng)
    orientation = [rng.randrange(0, 2) for _ in range(MAX_NODES)]
    cost = [rng.randrange(1, 100) for _ in range(MAX_NODES)]
    potential = [0] * MAX_NODES
    potential[0] = 1000  # the root's potential is set by the caller
    return WorkloadInputs(
        args={"r_root": 0},
        memory={"pred": tree["pred"], "child": tree["child"],
                "sibling": tree["sibling"], "orientation": orientation,
                "cost": cost, "potential": potential})


register(Workload(
    name="181.mcf", benchmark="181.mcf", function_name="refresh_potential",
    exec_percent=32, suite="SPEC-CPU", build=build,
    make_inputs=_inputs, reference=reference,
    output_objects=("potential",),
    description="network-simplex tree potential refresh (pointer chase)"))
