"""The ``synthetic`` workload family: frontend-compiled kernels.

Five small kernels written in the :mod:`repro.frontend` Python subset
and compiled to IR at registration time.  They grew out of the
frontend's differential-fuzz corpus (curated, not raw fuzzer output)
and earn their registry slots two ways:

* **scenario diversity** — each stresses a dependence shape the
  hand-ported Figure 6(b) kernels under-represent (saturating
  reductions, data-dependent resets, multi-array stencils,
  float/int conversion chains, early-exit searches), widening the
  bench matrix and the ``repro tune`` search surface;
* **frontend coverage** — the full pipeline (profile, partition,
  schedule, simulate, check) runs over frontend-*emitted* IR on every
  bench sweep, so frontend lowering changes that perturb program
  semantics fail loudly, not just under the fuzzer.

The reference oracle for every kernel is CPython executing the very
same source (:func:`repro.frontend.python_callable`) — the same
contract the differential fuzzer enforces.
"""

from __future__ import annotations

from .common import register
from .inline import source_workload

#: Saturating dot product: a reduction with a branchy clamp in the
#: loop-carried chain (the accumulator feeds min/max every iteration).
#: Every kernel takes a leading ``reps`` outer-trip count, pinned per
#: scale below, so ``ref`` inputs drive strictly more dynamic work
#: than ``train`` — the same contract the hand-ported kernels honor.
DOTSAT = '''
def dotsat(reps: int, lo: int, hi: int, xs: "int[48]", ys: "int[48]"):
    acc = 0
    for rep in range(reps):
        for i in range(48):
            acc = acc + xs[i] * ys[i]
            acc = max(lo, min(acc, hi))
    return acc
'''

#: Prefix sum with a data-dependent reset: the carried dependence is
#: sometimes cut by the input values themselves, so profile-guided
#: partitioning sees realistic control/data interplay.
PREFIX = '''
def prefix(reps: int, limit: int, data: "int[40]"):
    peaks = 0
    for rep in range(reps):
        run = 0
        for i in range(40):
            run = run + data[i]
            if run > limit or 0 - limit > run:
                run = 0
                peaks = peaks + 1
            data[i] = run
    return peaks
'''

#: Three-tap blur over one array into another: two live memory objects
#: and per-iteration loads at i-1/i/i+1 (clamped) — the memory-heavy,
#: mostly-parallel shape DSWP partitions well.
BLUR3 = '''
def blur3(reps: int, src: "int[32]", dst: "int[32]"):
    total = 0
    for rep in range(reps):
        for i in range(32):
            left = max(i - 1, 0)
            right = min(i + 1, 31)
            value = (src[left] + src[i] + src[right]) // 3
            dst[i] = value
            total = total + abs(value)
    return total
'''

#: Float quantization: int->float->int conversion chains with a sqrt
#: in the middle, exercising the FADD/FMUL/FSQRT/FTOI opcode flavors
#: the integer kernels never touch.
QUANT = '''
def quant(reps: int, scale: int, xs: "float[24]", out: "int[24]"):
    energy = 0.0
    for rep in range(reps):
        for i in range(24):
            value = xs[i] * float(scale)
            magnitude = sqrt(value * value + 1.0)
            out[i] = int(magnitude)
            energy = energy + magnitude
    return int(energy)
'''

#: Early-exit argmin: a while loop with a break on a sentinel value —
#: the latch-dominated, branch-mispredict-sensitive shape that makes
#: region selection and branch-profile decisions visible.
ARGMIN = '''
def argmin(reps: int, sentinel: int, data: "int[36]"):
    best = data[0]
    best_at = 0
    for rep in range(reps):
        i = 1
        while i < 36:
            value = data[i]
            if value == sentinel:
                break
            if value < best:
                best = value
                best_at = i
            i = i + 1
    return best, best_at
'''

#: Per-scale pinned scalar arguments.  ``reps`` sizes the outer loop so
#: ``ref`` runs land in the simulation-sized band the registry contract
#: requires (TestDynamicSizes) and strictly exceed ``train``.  argmin's
#: ``sentinel`` is pinned outside the data range so the early-exit
#: branch stays never-taken on registry inputs (the break shapes the
#: CFG and the branch profile; random CLI/fuzz inputs still take it).
_FAMILY = (
    ("syn.dotsat", DOTSAT, "saturating dot-product reduction",
     {"train": {"reps": 3}, "ref": {"reps": 18}}),
    ("syn.prefix", PREFIX, "prefix sum with data-dependent resets",
     {"train": {"reps": 3}, "ref": {"reps": 20}}),
    ("syn.blur3", BLUR3, "3-tap stencil, two memory objects",
     {"train": {"reps": 3}, "ref": {"reps": 22}}),
    ("syn.quant", QUANT, "float quantization with sqrt",
     {"train": {"reps": 4}, "ref": {"reps": 26}}),
    ("syn.argmin", ARGMIN, "early-exit argmin search",
     {"train": {"reps": 4, "sentinel": 99},
      "ref": {"reps": 30, "sentinel": 99}}),
)

#: Registry names of the family, in registration order (the bench spec
#: and the CI smoke iterate this).
SYNTHETIC_NAMES = tuple(name for name, _, _, _ in _FAMILY)

for _name, _source, _blurb, _scale_args in _FAMILY:
    register(source_workload(
        _name, _source, benchmark="synthetic",
        suite="synthetic", exec_percent=100,
        description="frontend-compiled kernel: %s" % _blurb,
        scale_args=_scale_args))
