"""Pointer-Intensive ``ks``: ``FindMaxGpAndSwap`` (100% of execution).

The Kernighan-Schweikert graph-partitioner's hot function: a doubly nested
scan over the two partitions computing the gain of every candidate swap,
tracking the maximum — the inner loop's only cross-iteration products are
the running maximum and its argmax, i.e. *live-outs*.  This is the kernel
where the companion text reports COCO's largest win with GREMIO (73.7%
fewer dynamic communication instructions: the inner loop that merely
consumed a live-out disappears from one thread).
"""

from __future__ import annotations

from typing import Dict

from ..ir.builder import FunctionBuilder
from ..ir.cfg import Function
from .common import (Workload, WorkloadInputs, register, rng_for,
                     scale_size)

MAX_N = 64


def build() -> Function:
    b = FunctionBuilder(
        "FindMaxGpAndSwap",
        params=["p_d1", "p_d2", "p_cost", "r_n"],
        live_outs=["r_maxgain", "r_besti", "r_bestj"])
    b.mem("d1", MAX_N, ptr="p_d1")
    b.mem("d2", MAX_N, ptr="p_d2")
    b.mem("cost", MAX_N * MAX_N, ptr="p_cost")

    b.label("entry")
    b.movi("r_maxgain", -1000000000)
    b.movi("r_besti", -1)
    b.movi("r_bestj", -1)
    b.movi("r_i", 0)
    b.jmp("outer")

    b.label("outer")
    b.cmplt("r_ci", "r_i", "r_n")
    b.br("r_ci", "outer_body", "swap")

    b.label("outer_body")
    b.add("r_pd1", "p_d1", "r_i")
    b.load("r_di", "r_pd1", 0, region="d1")
    b.mul("r_rowbase", "r_i", "r_n")
    b.movi("r_j", 0)
    b.jmp("inner")

    b.label("inner")
    b.cmplt("r_cj", "r_j", "r_n")
    b.br("r_cj", "inner_body", "outer_latch")

    b.label("inner_body")
    b.add("r_pd2", "p_d2", "r_j")
    b.load("r_dj", "r_pd2", 0, region="d2")
    b.add("r_off", "r_rowbase", "r_j")
    b.add("r_pc", "p_cost", "r_off")
    b.load("r_cw", "r_pc", 0, region="cost")
    b.add("r_gain", "r_di", "r_dj")
    b.shl("r_cw2", "r_cw", 1)
    b.sub("r_gain", "r_gain", "r_cw2")
    b.cmpgt("r_better", "r_gain", "r_maxgain")
    b.br("r_better", "update", "inner_latch")
    b.label("update")
    b.mov("r_maxgain", "r_gain")
    b.mov("r_besti", "r_i")
    b.mov("r_bestj", "r_j")
    b.jmp("inner_latch")
    b.label("inner_latch")
    b.add("r_j", "r_j", 1)
    b.jmp("inner")

    b.label("outer_latch")
    b.add("r_i", "r_i", 1)
    b.jmp("outer")

    # The "AndSwap" part: update the D values for the chosen pair.
    b.label("swap")
    b.cmplt("r_valid", "r_besti", 0)
    b.br("r_valid", "done", "do_swap")
    b.label("do_swap")
    b.mul("r_brow", "r_besti", "r_n")
    b.movi("r_k", 0)
    b.jmp("swap_loop")
    b.label("swap_loop")
    b.cmplt("r_ck", "r_k", "r_n")
    b.br("r_ck", "swap_body", "done")
    b.label("swap_body")
    b.add("r_pci", "p_cost", "r_brow")
    b.add("r_pci", "r_pci", "r_k")
    b.load("r_cik", "r_pci", 0, region="cost")
    b.shl("r_cik2", "r_cik", 1)
    b.add("r_pd1k", "p_d1", "r_k")
    b.load("r_d1k", "r_pd1k", 0, region="d1")
    b.add("r_d1k", "r_d1k", "r_cik2")
    b.store("r_pd1k", "r_d1k", 0, region="d1")
    b.mul("r_krow", "r_k", "r_n")
    b.add("r_pcj", "p_cost", "r_krow")
    b.add("r_pcj", "r_pcj", "r_bestj")
    b.load("r_ckj", "r_pcj", 0, region="cost")
    b.shl("r_ckj2", "r_ckj", 1)
    b.add("r_pd2k", "p_d2", "r_k")
    b.load("r_d2k", "r_pd2k", 0, region="d2")
    b.sub("r_d2k", "r_d2k", "r_ckj2")
    b.store("r_pd2k", "r_d2k", 0, region="d2")
    b.add("r_k", "r_k", 1)
    b.jmp("swap_loop")

    b.label("done")
    b.exit()
    return b.build()


def reference(inputs: WorkloadInputs) -> Dict[str, object]:
    n = inputs.args["r_n"]
    d1 = list(inputs.memory["d1"])
    d2 = list(inputs.memory["d2"])
    cost = inputs.memory["cost"]
    maxgain, besti, bestj = -1000000000, -1, -1
    for i in range(n):
        for j in range(n):
            gain = d1[i] + d2[j] - 2 * cost[i * n + j]
            if gain > maxgain:
                maxgain, besti, bestj = gain, i, j
    if besti >= 0:
        for k in range(n):
            d1[k] += 2 * cost[besti * n + k]
            d2[k] -= 2 * cost[k * n + bestj]
    return {"r_maxgain": maxgain, "r_besti": besti, "r_bestj": bestj,
            "d1": d1, "d2": d2}


def _inputs(scale: str) -> WorkloadInputs:
    n = scale_size(scale, train=8, ref=26)
    rng = rng_for("ks", scale)
    return WorkloadInputs(
        args={"r_n": n},
        memory={
            "d1": [rng.randrange(-40, 41) for _ in range(n)],
            "d2": [rng.randrange(-40, 41) for _ in range(n)],
            "cost": [rng.randrange(0, 10) for _ in range(n * n)],
        })


register(Workload(
    name="ks", benchmark="ks", function_name="FindMaxGpAndSwap",
    exec_percent=100, suite="Pointer-Intensive", build=build,
    make_inputs=_inputs, reference=reference,
    output_objects=("d1", "d2"),
    description="KS partitioner max-gain swap search"))
