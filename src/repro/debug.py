"""Divergence debugging: locate where an MT execution departs from the
single-threaded oracle.

When a partitioner/codegen change breaks semantics, the failing symptom
(a wrong live-out, a differing memory word) is far from the cause.  This
module re-executes both versions and reports the *first divergent memory
write* and the register-state mismatches around it — the tool we use on
ourselves when a property test shrinks a counterexample.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional

from .interp.context import StepStatus, ThreadContext
from .interp.state import bind_params, make_memory
from .ir.cfg import Function
from .ir.instructions import Opcode
from .machine.functional import FifoQueues
from .mtcg.program import MTProgram


class WriteRecord:
    __slots__ = ("address", "value", "iid", "thread")

    def __init__(self, address: int, value, iid: int, thread: int):
        self.address = address
        self.value = value
        self.iid = iid
        self.thread = thread

    def __repr__(self) -> str:  # pragma: no cover
        return "<write mem[%d]=%r by iid %d (thread %d)>" % (
            self.address, self.value, self.iid, self.thread)


def _trace_single(function: Function, args, initial_memory,
                  max_steps: int) -> List[WriteRecord]:
    memory = make_memory(function, initial_memory)
    regs = bind_params(function, dict(args) if args else {})
    context = ThreadContext(function, regs, memory, None)
    writes: List[WriteRecord] = []
    steps = 0
    while not context.exited and steps < max_steps:
        instruction = context.current_instruction()
        result = context.step()
        steps += 1
        if instruction is not None and instruction.op is Opcode.STORE:
            writes.append(WriteRecord(result.mem_address,
                                      memory.load(result.mem_address),
                                      instruction.iid, 0))
    return writes


def _trace_mt(program: MTProgram, args, initial_memory,
              queue_capacity: int,
              max_steps: int) -> List[WriteRecord]:
    memory = make_memory(program.original, initial_memory)
    queues = FifoQueues(program.n_queues, queue_capacity)
    contexts = [ThreadContext(fn, bind_params(fn, dict(args) if args
                                              else {}), memory, queues)
                for fn in program.threads]
    writes: List[WriteRecord] = []
    live = [not c.exited for c in contexts]
    steps = 0
    while any(live) and steps < max_steps:
        progressed = False
        for index, context in enumerate(contexts):
            if not live[index]:
                continue
            instruction = context.current_instruction()
            result = context.step()
            if result.status is StepStatus.BLOCKED:
                continue
            progressed = True
            steps += 1
            if result.status is StepStatus.EXITED:
                live[index] = False
            if instruction is not None \
                    and instruction.op is Opcode.STORE:
                writes.append(WriteRecord(result.mem_address,
                                          memory.load(result.mem_address),
                                          instruction.iid, index))
        if not progressed:
            break  # deadlock: report what we have
    return writes


class Divergence:
    """The first point where the per-address write sequences differ."""

    def __init__(self, address: int, index: int,
                 expected: Optional[WriteRecord],
                 actual: Optional[WriteRecord]):
        self.address = address
        self.index = index          # which write to this address (0-based)
        self.expected = expected    # from the single-threaded oracle
        self.actual = actual        # from the MT execution

    def describe(self) -> str:
        lines = ["first divergence at memory address %d, write #%d:"
                 % (self.address, self.index)]
        lines.append("  expected: %r" % (self.expected,))
        lines.append("  actual:   %r" % (self.actual,))
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover
        return "<Divergence @%d #%d>" % (self.address, self.index)


def find_divergence(function: Function, program: MTProgram,
                    args: Optional[Mapping[str, object]] = None,
                    initial_memory: Optional[Mapping[str, object]] = None,
                    queue_capacity: int = 32,
                    max_steps: int = 5_000_000) -> Optional[Divergence]:
    """Compare the per-address sequences of memory writes between the
    single-threaded oracle and the MT execution; return the first
    mismatch, or None when the write streams agree everywhere.

    Writes to the same address must happen in the same order with the
    same values (MTCG's guarantee); writes to *different* addresses may
    legally interleave differently, so the comparison is per address.
    """
    st_writes = _trace_single(function, args, initial_memory, max_steps)
    mt_writes = _trace_mt(program, args, initial_memory, queue_capacity,
                          max_steps)

    def by_address(writes: List[WriteRecord]
                   ) -> Dict[int, List[WriteRecord]]:
        result: Dict[int, List[WriteRecord]] = {}
        for record in writes:
            result.setdefault(record.address, []).append(record)
        return result

    expected = by_address(st_writes)
    actual = by_address(mt_writes)
    for address in sorted(set(expected) | set(actual)):
        exp_list = expected.get(address, [])
        act_list = actual.get(address, [])
        for index in range(max(len(exp_list), len(act_list))):
            exp = exp_list[index] if index < len(exp_list) else None
            act = act_list[index] if index < len(act_list) else None
            if exp is None or act is None or exp.value != act.value:
                return Divergence(address, index, exp, act)
    return None
