"""Divergence debugging: locate where an MT execution departs from the
single-threaded oracle.

When a partitioner/codegen change breaks semantics, the failing symptom
(a wrong live-out, a differing memory word) is far from the cause.  This
module re-executes both versions and reports the *first divergent memory
write* and the register-state mismatches around it — the tool we use on
ourselves when a property test shrinks a counterexample.

The tracers are also the execution layer of the differential oracle in
:mod:`repro.check.oracle`: :func:`trace_single` and :func:`trace_mt`
return full write traces plus final register state, and an MT run that
stops making progress yields a structured :class:`DeadlockReport`
(blocked threads, blocking queues/channels, pending queue occupancy)
instead of silently truncating the trace.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional

from .interp.context import StepStatus, ThreadContext
from .interp.state import bind_params, make_memory
from .ir.cfg import Function
from .ir.instructions import Instruction, Opcode
from .machine.functional import FifoQueues
from .mtcg.program import MTProgram
from .trace.events import FunctionalEvent, RingBuffer

#: How many of the most recent functional steps a deadlock report keeps.
RECENT_EVENT_CAPACITY = 256


class WriteRecord:
    __slots__ = ("address", "value", "iid", "thread")

    def __init__(self, address: int, value, iid: int, thread: int):
        self.address = address
        self.value = value
        self.iid = iid
        self.thread = thread

    def __repr__(self) -> str:  # pragma: no cover
        return "<write mem[%d]=%r by iid %d (thread %d)>" % (
            self.address, self.value, self.iid, self.thread)


class BlockedThread:
    """One thread stuck on a queue operation when progress stopped."""

    __slots__ = ("thread", "instruction", "queue")

    def __init__(self, thread: int, instruction: Optional[Instruction],
                 queue: Optional[int]):
        self.thread = thread
        self.instruction = instruction
        self.queue = queue

    def __repr__(self) -> str:  # pragma: no cover
        return "<thread %d blocked on q%s at %r>" % (
            self.thread, self.queue, self.instruction)


class DeadlockReport:
    """Structured account of an MT execution that stopped progressing:
    which threads are blocked, on which queues/channels, and what is
    still pending in every queue."""

    def __init__(self, blocked: List[BlockedThread],
                 occupancy: Dict[int, int],
                 channels: List = (),
                 recent_events: List[FunctionalEvent] = ()):
        self.blocked = blocked
        self.occupancy = occupancy      # queue id -> pending value count
        self.channels = list(channels)  # CommChannels of blocking queues
        # The last functional steps before progress stopped (bounded).
        self.recent_events = list(recent_events)

    @property
    def blocked_threads(self) -> List[int]:
        return [record.thread for record in self.blocked]

    @property
    def blocking_queues(self) -> List[int]:
        return sorted({record.queue for record in self.blocked
                       if record.queue is not None})

    def describe(self) -> str:
        lines = ["deadlock: %d thread(s) blocked"
                 % len(self.blocked)]
        for record in self.blocked:
            instruction = record.instruction
            what = (instruction.op.value if instruction is not None
                    else "?")
            lines.append("  thread %d blocked on %s (queue %s), "
                         "queue holds %d pending value(s)"
                         % (record.thread, what, record.queue,
                            self.occupancy.get(record.queue, 0)))
        for channel in self.channels:
            lines.append("  blocking channel: %r" % (channel,))
        if self.recent_events:
            tail = self.recent_events[-8:]
            lines.append("  last %d step(s) before the stall:"
                         % len(tail))
            for event in tail:
                lines.append("    " + event.describe())
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover
        return "<DeadlockReport threads=%r queues=%r>" % (
            self.blocked_threads, self.blocking_queues)


class DeadlockDetected(Exception):
    """Raised when an MT trace deadlocks; carries the report and the
    writes observed before progress stopped."""

    def __init__(self, report: DeadlockReport,
                 writes: List[WriteRecord]):
        super().__init__(report.describe())
        self.report = report
        self.writes = writes


class STTrace:
    """A single-threaded execution's observable effects."""

    __slots__ = ("writes", "regs", "steps", "exhausted")

    def __init__(self, writes: List[WriteRecord], regs: Dict[str, object],
                 steps: int, exhausted: bool):
        self.writes = writes
        self.regs = regs
        self.steps = steps
        self.exhausted = exhausted


class MTTrace:
    """A multi-threaded execution's observable effects."""

    __slots__ = ("writes", "thread_regs", "steps", "deadlock",
                 "exhausted", "queues")

    def __init__(self, writes: List[WriteRecord],
                 thread_regs: List[Dict[str, object]], steps: int,
                 deadlock: Optional[DeadlockReport], exhausted: bool,
                 queues: FifoQueues):
        self.writes = writes
        self.thread_regs = thread_regs
        self.steps = steps
        self.deadlock = deadlock
        self.exhausted = exhausted
        self.queues = queues


def trace_single(function: Function, args=None, initial_memory=None,
                 max_steps: int = 5_000_000) -> STTrace:
    memory = make_memory(function, initial_memory)
    regs = bind_params(function, dict(args) if args else {})
    context = ThreadContext(function, regs, memory, None)
    writes: List[WriteRecord] = []
    steps = 0
    while not context.exited and steps < max_steps:
        instruction = context.current_instruction()
        result = context.step()
        steps += 1
        if instruction is not None and instruction.op is Opcode.STORE:
            writes.append(WriteRecord(result.mem_address,
                                      memory.load(result.mem_address),
                                      instruction.iid, 0))
    return STTrace(writes, context.regs, steps,
                   exhausted=not context.exited)


def trace_mt(program: MTProgram, args=None, initial_memory=None,
             queue_capacity: int = 32,
             max_steps: int = 5_000_000) -> MTTrace:
    memory = make_memory(program.original, initial_memory)
    queues = FifoQueues(program.n_queues, queue_capacity)
    contexts = [ThreadContext(fn, bind_params(fn, dict(args) if args
                                              else {}), memory, queues)
                for fn in program.threads]
    writes: List[WriteRecord] = []
    live = [not c.exited for c in contexts]
    deadlock: Optional[DeadlockReport] = None
    recent = RingBuffer(RECENT_EVENT_CAPACITY)
    steps = 0
    while any(live) and steps < max_steps:
        progressed = False
        for index, context in enumerate(contexts):
            if not live[index]:
                continue
            instruction = context.current_instruction()
            result = context.step()
            if result.status is StepStatus.BLOCKED:
                continue
            progressed = True
            steps += 1
            if instruction is not None:
                recent.append(FunctionalEvent(
                    steps, index, instruction.op.value, instruction.iid,
                    queue=(instruction.queue
                           if instruction.is_communication() else None)))
            if result.status is StepStatus.EXITED:
                live[index] = False
            if instruction is not None \
                    and instruction.op is Opcode.STORE:
                writes.append(WriteRecord(result.mem_address,
                                          memory.load(result.mem_address),
                                          instruction.iid, index))
        if not progressed:
            deadlock = _deadlock_report(program, contexts, live, queues,
                                        recent)
            break
    return MTTrace(writes, [c.regs for c in contexts], steps, deadlock,
                   exhausted=(deadlock is None and any(live)), queues=queues)


def _deadlock_report(program: MTProgram, contexts: List[ThreadContext],
                     live: List[bool], queues: FifoQueues,
                     recent: Optional[RingBuffer] = None
                     ) -> DeadlockReport:
    blocked: List[BlockedThread] = []
    for index, context in enumerate(contexts):
        if not live[index]:
            continue
        instruction = context.current_instruction()
        queue = (instruction.queue if instruction is not None
                 and instruction.is_communication() else None)
        blocked.append(BlockedThread(index, instruction, queue))
    occupancy = {queue: len(pending)
                 for queue, pending in enumerate(queues.queues)
                 if pending}
    channels = [program.channel_by_queue(record.queue)
                for record in blocked if record.queue is not None]
    return DeadlockReport(blocked, occupancy,
                          [c for c in channels if c is not None],
                          recent_events=(recent.snapshot()
                                         if recent is not None else ()))


class Divergence:
    """The first point where the per-address write sequences differ."""

    def __init__(self, address: int, index: int,
                 expected: Optional[WriteRecord],
                 actual: Optional[WriteRecord]):
        self.address = address
        self.index = index          # which write to this address (0-based)
        self.expected = expected    # from the single-threaded oracle
        self.actual = actual        # from the MT execution

    def describe(self) -> str:
        lines = ["first divergence at memory address %d, write #%d:"
                 % (self.address, self.index)]
        lines.append("  expected: %r" % (self.expected,))
        lines.append("  actual:   %r" % (self.actual,))
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover
        return "<Divergence @%d #%d>" % (self.address, self.index)


def diff_write_traces(st_writes: List[WriteRecord],
                      mt_writes: List[WriteRecord]
                      ) -> Optional[Divergence]:
    """Compare per-address write sequences; return the first mismatch.

    Writes to the same address must happen in the same order with the
    same values (MTCG's guarantee); writes to *different* addresses may
    legally interleave differently, so the comparison is per address.
    """
    def by_address(writes: List[WriteRecord]
                   ) -> Dict[int, List[WriteRecord]]:
        result: Dict[int, List[WriteRecord]] = {}
        for record in writes:
            result.setdefault(record.address, []).append(record)
        return result

    expected = by_address(st_writes)
    actual = by_address(mt_writes)
    for address in sorted(set(expected) | set(actual)):
        exp_list = expected.get(address, [])
        act_list = actual.get(address, [])
        for index in range(max(len(exp_list), len(act_list))):
            exp = exp_list[index] if index < len(exp_list) else None
            act = act_list[index] if index < len(act_list) else None
            if exp is None or act is None or exp.value != act.value:
                return Divergence(address, index, exp, act)
    return None


def find_divergence(function: Function, program: MTProgram,
                    args: Optional[Mapping[str, object]] = None,
                    initial_memory: Optional[Mapping[str, object]] = None,
                    queue_capacity: int = 32,
                    max_steps: int = 5_000_000,
                    on_deadlock: str = "raise") -> Optional[Divergence]:
    """Compare the per-address sequences of memory writes between the
    single-threaded oracle and the MT execution; return the first
    mismatch, or None when the write streams agree everywhere.

    When the MT execution deadlocks, ``on_deadlock`` selects the
    behavior: ``"raise"`` (default) raises :class:`DeadlockDetected`
    carrying the structured :class:`DeadlockReport`; ``"truncate"``
    keeps the historical behavior of diffing whatever writes happened
    before progress stopped (see :func:`find_divergence_truncating`).
    """
    if on_deadlock not in ("raise", "truncate"):
        raise ValueError("on_deadlock must be 'raise' or 'truncate', "
                         "got %r" % (on_deadlock,))
    st_trace = trace_single(function, args, initial_memory, max_steps)
    mt_trace = trace_mt(program, args, initial_memory, queue_capacity,
                        max_steps)
    if mt_trace.deadlock is not None and on_deadlock == "raise":
        raise DeadlockDetected(mt_trace.deadlock, mt_trace.writes)
    return diff_write_traces(st_trace.writes, mt_trace.writes)


def find_divergence_truncating(function: Function, program: MTProgram,
                               args=None, initial_memory=None,
                               queue_capacity: int = 32,
                               max_steps: int = 5_000_000
                               ) -> Optional[Divergence]:
    """Compatibility wrapper: the pre-DeadlockReport behavior, where a
    deadlocked MT run is diffed as-is (the missing writes then surface
    as a divergence)."""
    return find_divergence(function, program, args, initial_memory,
                           queue_capacity, max_steps,
                           on_deadlock="truncate")
