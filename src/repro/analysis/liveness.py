"""Classic liveness analysis, per instruction."""

from __future__ import annotations

from typing import Dict, FrozenSet, Set

from ..ir.cfg import Function
from .dataflow import instruction_defs, instruction_uses, solve_backward


class LivenessResult:
    """Live registers before/after every instruction (by iid) and at block
    boundaries."""

    def __init__(self, live_in: Dict[int, FrozenSet[str]],
                 live_out: Dict[int, FrozenSet[str]],
                 block_live_in: Dict[str, FrozenSet[str]],
                 block_live_out: Dict[str, FrozenSet[str]]):
        self.live_in = live_in
        self.live_out = live_out
        self.block_live_in = block_live_in
        self.block_live_out = block_live_out

    def is_live_before(self, iid: int, register: str) -> bool:
        return register in self.live_in.get(iid, frozenset())

    def is_live_after(self, iid: int, register: str) -> bool:
        return register in self.live_out.get(iid, frozenset())


def liveness(function: Function) -> LivenessResult:
    gen: Dict[str, Set] = {}
    kill: Dict[str, Set] = {}
    for block in function.blocks:
        uses: Set[str] = set()
        defs: Set[str] = set()
        for instruction in block:
            for register in instruction_uses(instruction, function):
                if register not in defs:
                    uses.add(register)
            defs.update(instruction_defs(instruction))
        gen[block.label] = uses
        kill[block.label] = defs

    # The exit "use" of live-outs is modeled on the exit instruction itself
    # (via instruction_uses), so the boundary fact past exits is empty.
    boundary: Dict[str, Set] = {}
    block_out = solve_backward(function, gen, kill, boundary)

    live_in: Dict[int, FrozenSet[str]] = {}
    live_out: Dict[int, FrozenSet[str]] = {}
    block_live_in: Dict[str, FrozenSet[str]] = {}
    block_live_out: Dict[str, FrozenSet[str]] = {}
    for block in function.blocks:
        current: Set[str] = set(block_out[block.label])
        block_live_out[block.label] = frozenset(current)
        for instruction in reversed(block.instructions):
            live_out[instruction.iid] = frozenset(current)
            current -= set(instruction_defs(instruction))
            current |= set(instruction_uses(instruction, function))
            live_in[instruction.iid] = frozenset(current)
        block_live_in[block.label] = frozenset(current)
    return LivenessResult(live_in, live_out, block_live_in, block_live_out)
