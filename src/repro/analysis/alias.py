"""Pointer-provenance alias analysis.

This stands in for the context-sensitive points-to analysis (Nystrom et al.)
the papers' compiler uses.  The mini-IR makes provenance explicit at the
roots: pointer parameters are declared to point into named memory objects.
The analysis then propagates, flow-insensitively, the set of memory objects
each register's value may point into:

* copies and add/sub/min/max propagate the union of their operands'
  provenance (pointer arithmetic stays within an object, as in C);
* constants and other ALU results carry no provenance;
* a value loaded from memory gets *unknown* provenance (bottom), because
  memory cells are untyped — unless every store into the aliasing region has
  a known provenance... which we do not track; unknown it is.

A memory access whose address register has provenance ``{o1, o2}`` may
touch only those objects; an access with unknown provenance may touch
anything.  Instructions may also carry an explicit ``region`` annotation,
which overrides the analysis (used by kernels to assert disjointness the
simple analysis cannot see, standing in for shape/array analysis).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Optional, Set

from ..ir.cfg import Function
from ..ir.instructions import Instruction, Opcode

# Opcodes through which pointer provenance flows (first/either operand).
_PROPAGATING = {Opcode.MOV, Opcode.ADD, Opcode.SUB, Opcode.MIN, Opcode.MAX}

UNKNOWN = None  # provenance lattice bottom: may point anywhere


ALIAS_MODES = ("annotated", "provenance", "none")


class AliasAnalysis:
    """Flow-insensitive provenance sets per register, and per-access
    may-touch object sets.

    ``mode`` selects the disambiguation power (the papers discuss this
    axis explicitly — their points-to analysis [14] leaves DSWP with
    bidirectional in-loop memory dependences, and they note stronger
    loop-aware disambiguation would change the picture):

    * ``"annotated"`` (default): kernel ``region`` annotations override
      the provenance analysis — models shape/array-section analysis;
    * ``"provenance"``: allocation-site points-to only (annotations
      ignored) — models the papers' pointer analysis;
    * ``"none"``: no disambiguation; every pair of accesses may alias.
    """

    def __init__(self, function: Function, mode: str = "annotated"):
        if mode not in ALIAS_MODES:
            raise ValueError("unknown alias mode %r (use one of %s)"
                             % (mode, ALIAS_MODES))
        self.function = function
        self.mode = mode
        self._provenance = _solve_provenance(function)
        self._all_objects = frozenset(function.mem_objects)

    def register_provenance(self, register: str) -> Optional[FrozenSet[str]]:
        """Objects ``register`` may point into; ``None`` (UNKNOWN) if it may
        point anywhere (or holds a non-pointer used as an address)."""
        return self._provenance.get(register, frozenset())

    def may_touch(self, instruction: Instruction) -> FrozenSet[str]:
        """Memory objects a load/store may access."""
        if not instruction.is_memory():
            raise ValueError("not a memory instruction: %r" % instruction)
        if self.mode == "none":
            return self._all_objects or frozenset({"<anywhere>"})
        if self.mode == "annotated" and instruction.region is not None:
            return frozenset({instruction.region})
        provenance = self.register_provenance(instruction.srcs[0])
        if provenance is UNKNOWN or not provenance:
            # Unknown or empty provenance: be conservative.
            return self._all_objects if self._all_objects else frozenset(
                {"<anywhere>"})
        return provenance

    def may_alias(self, a: Instruction, b: Instruction) -> bool:
        """May two memory instructions touch a common location?

        In ``annotated`` mode, distinct explicit ``region`` annotations
        never alias, even when the regions are not declared memory
        objects (kernels use sub-object region names to assert disjoint
        array sections)."""
        if self.mode == "none":
            return True
        if self.mode == "annotated" \
                and a.region is not None and b.region is not None:
            return a.region == b.region
        return bool(self.may_touch(a) & self.may_touch(b))


def _solve_provenance(function: Function
                      ) -> Dict[str, Optional[FrozenSet[str]]]:
    # Start from the declared pointer parameters.
    provenance: Dict[str, Optional[Set[str]]] = {
        param: {obj} for param, obj in function.pointer_params.items()}

    def merge(register: str, value: Optional[Set[str]]) -> bool:
        old = provenance.get(register, set())
        if old is UNKNOWN:
            return False
        if value is UNKNOWN:
            provenance[register] = UNKNOWN
            return True
        new = old | value
        if new != old:
            provenance[register] = new
            return True
        return False

    changed = True
    while changed:
        changed = False
        for instruction in function.instructions():
            if instruction.dest is None:
                continue
            op = instruction.op
            if op is Opcode.LOAD or op is Opcode.CONSUME:
                changed |= merge(instruction.dest, UNKNOWN)
            elif op in _PROPAGATING:
                combined: Optional[Set[str]] = set()
                for source in instruction.srcs:
                    source_prov = provenance.get(source, set())
                    if source_prov is UNKNOWN:
                        combined = UNKNOWN
                        break
                    combined |= source_prov
                changed |= merge(instruction.dest, combined)
            # All other defs (constants, compares, mul, float ops...) carry
            # empty provenance: they are not addresses derived from objects.
    return {register: (frozenset(value) if value is not UNKNOWN else UNKNOWN)
            for register, value in provenance.items()}
