"""Program analyses: dominance, control dependence, dataflow, alias, PDG."""

from .alias import AliasAnalysis
from .control_dependence import (ControlDependenceGraph,
                                 control_dependence_graph)
from .dominators import (VIRTUAL_EXIT, DominatorTree, dominator_tree,
                         postdominator_tree)
from .liveness import LivenessResult, liveness
from .loops import (Loop, LoopNestForest, loop_nest_forest,
                    loop_trip_count_estimate)
from .memdep import memory_dependences
from .pdg import PDG, DependenceArc, DepKind, build_pdg
from .reaching_defs import (PARAM_DEF, ReachingDefsResult,
                            reaching_definitions, register_dependences)

__all__ = [
    "AliasAnalysis", "ControlDependenceGraph", "control_dependence_graph",
    "VIRTUAL_EXIT", "DominatorTree", "dominator_tree", "postdominator_tree",
    "LivenessResult", "liveness", "Loop", "LoopNestForest",
    "loop_nest_forest", "loop_trip_count_estimate", "memory_dependences",
    "PDG", "DependenceArc", "DepKind", "build_pdg", "PARAM_DEF",
    "ReachingDefsResult", "reaching_definitions", "register_dependences",
]
