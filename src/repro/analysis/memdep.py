"""Memory dependence arcs.

Two memory instructions depend on each other when they may alias, at least
one is a store, and one can execute before the other (there is a CFG path).
Inside a loop the path relation holds in both directions, so the arcs come
out bidirectional — exactly the effect the companion text describes ("any
memory dependence is essentially bi-directional, thus forcing these
instructions to be assigned to the same thread in order to form a
pipeline" under DSWP).
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from ..ir.cfg import Function
from ..ir.instructions import Opcode
from .alias import AliasAnalysis


def _block_reachability(function: Function) -> Dict[str, Set[str]]:
    """reach[b] = blocks reachable from b by a path of >= 1 edge."""
    successors = {block.label: list(block.successors())
                  for block in function.blocks}
    reach: Dict[str, Set[str]] = {}
    for start in successors:
        seen: Set[str] = set()
        stack = list(successors[start])
        while stack:
            node = stack.pop()
            if node in seen:
                continue
            seen.add(node)
            stack.extend(successors[node])
        reach[start] = seen
    return reach


def memory_dependences(function: Function,
                       alias: AliasAnalysis = None
                       ) -> List[Tuple[int, int]]:
    """All memory dependence arcs ``(from iid, to iid)``, sorted.

    An arc ``I -> J`` means J must observe I's memory effect whenever a
    dynamic instance of I precedes one of J.
    """
    if alias is None:
        alias = AliasAnalysis(function)
    memory_ops = [instruction for instruction in function.instructions()
                  if instruction.is_memory()]
    block_of = function.block_of()
    position = function.position_of()
    reach = _block_reachability(function)

    arcs: List[Tuple[int, int]] = []
    for i, first in enumerate(memory_ops):
        for second in memory_ops[i:]:
            if first.iid == second.iid:
                continue
            if first.op is Opcode.LOAD and second.op is Opcode.LOAD:
                continue
            if not alias.may_alias(first, second):
                continue
            for a, b in ((first, second), (second, first)):
                block_a, block_b = block_of[a.iid], block_of[b.iid]
                same_block_forward = (block_a == block_b
                                      and position[a.iid] < position[b.iid])
                if same_block_forward or block_b in reach[block_a]:
                    arcs.append((a.iid, b.iid))
    arcs.sort()
    return arcs
