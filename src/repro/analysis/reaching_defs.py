"""Reaching definitions, per instruction.

A *definition* is an instruction that writes a register; definitions are
identified by iid.  The register data-dependence arcs of the PDG are read
straight off this analysis: there is an arc ``D -> U`` labeled ``r`` iff
``D`` defines ``r``, ``U`` uses ``r``, and ``D`` reaches ``U`` — including
around loop back edges, which yields the loop-carried dependences that make
DSWP's SCCs.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Set, Tuple

from ..ir.cfg import Function
from .dataflow import instruction_defs, instruction_uses, solve_forward_union

# A definition fact: (iid of defining instruction, register).
Definition = Tuple[int, str]

PARAM_DEF = -1  # pseudo-iid for "defined by a function parameter"


class ReachingDefsResult:
    def __init__(self, reach_in: Dict[int, FrozenSet[Definition]]):
        self.reach_in = reach_in

    def definitions_reaching(self, iid: int, register: str) -> List[int]:
        """Iids of definitions of ``register`` reaching ``iid`` (PARAM_DEF
        for the parameter pseudo-definition), sorted."""
        return sorted(def_iid
                      for def_iid, def_register in self.reach_in.get(
                          iid, frozenset())
                      if def_register == register)


def reaching_definitions(function: Function) -> ReachingDefsResult:
    defs_of_register: Dict[str, Set[Definition]] = {}
    for instruction in function.instructions():
        for register in instruction_defs(instruction):
            defs_of_register.setdefault(register, set()).add(
                (instruction.iid, register))
    for param in function.params:
        defs_of_register.setdefault(param, set()).add((PARAM_DEF, param))

    gen: Dict[str, Set] = {}
    kill: Dict[str, Set] = {}
    for block in function.blocks:
        block_gen: Set[Definition] = set()
        block_kill: Set[Definition] = set()
        for instruction in block:
            for register in instruction_defs(instruction):
                everything = defs_of_register[register]
                block_gen -= everything
                block_kill |= everything
                block_gen.add((instruction.iid, register))
        gen[block.label] = block_gen
        kill[block.label] = block_kill

    entry_fact: Set[Definition] = {(PARAM_DEF, param)
                                   for param in function.params}
    block_in = solve_forward_union(function, gen, kill, entry_fact)

    reach_in: Dict[int, FrozenSet[Definition]] = {}
    for block in function.blocks:
        current: Set[Definition] = set(block_in[block.label])
        for instruction in block:
            reach_in[instruction.iid] = frozenset(current)
            for register in instruction_defs(instruction):
                current -= defs_of_register[register]
                current.add((instruction.iid, register))
    return ReachingDefsResult(reach_in)


def register_dependences(function: Function
                         ) -> List[Tuple[int, int, str]]:
    """All register dependence arcs ``(def iid, use iid, register)``.

    Parameter pseudo-definitions produce no arcs (parameters are available
    to every thread at start-up)."""
    reaching = reaching_definitions(function)
    arcs: List[Tuple[int, int, str]] = []
    for instruction in function.instructions():
        for register in set(instruction_uses(instruction, function)):
            for def_iid in reaching.definitions_reaching(
                    instruction.iid, register):
                if def_iid != PARAM_DEF and def_iid != instruction.iid:
                    arcs.append((def_iid, instruction.iid, register))
    arcs.sort()
    return arcs
