"""Natural loops and the loop-nest forest.

The loop-nest forest is GREMIO's scheduling hierarchy: the scheduler works
level by level, treating each inner loop as a single schedulable unit with a
profile-estimated latency, and recursing into it afterwards.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from ..ir.cfg import Function
from .dominators import dominator_tree


class Loop:
    """One natural loop: header, member blocks, and nested children."""

    def __init__(self, header: str):
        self.header = header
        self.blocks: Set[str] = {header}
        self.back_edge_sources: Set[str] = set()
        self.parent: Optional["Loop"] = None
        self.children: List["Loop"] = []
        self.depth = 1

    @property
    def exclusive_blocks(self) -> Set[str]:
        """Blocks in this loop but in none of its children."""
        nested: Set[str] = set()
        for child in self.children:
            nested |= child.blocks
        return self.blocks - nested

    def contains_block(self, label: str) -> bool:
        return label in self.blocks

    def __repr__(self) -> str:  # pragma: no cover
        return "<Loop header=%s depth=%d blocks=%d>" % (
            self.header, self.depth, len(self.blocks))


class LoopNestForest:
    """All loops of a function, organized by nesting."""

    def __init__(self, function: Function, top_level: List[Loop],
                 by_header: Dict[str, Loop]):
        self.function = function
        self.top_level = top_level
        self.by_header = by_header

    def all_loops(self) -> List[Loop]:
        result: List[Loop] = []
        stack = list(self.top_level)
        while stack:
            loop = stack.pop()
            result.append(loop)
            stack.extend(loop.children)
        result.sort(key=lambda lp: (lp.depth, lp.header))
        return result

    def innermost_loop_of(self, block_label: str) -> Optional[Loop]:
        best: Optional[Loop] = None
        for loop in self.all_loops():
            if loop.contains_block(block_label):
                if best is None or loop.depth > best.depth:
                    best = loop
        return best

    def depth_by_block(self) -> Dict[str, int]:
        depth: Dict[str, int] = {b.label: 0 for b in self.function.blocks}
        for loop in self.all_loops():
            for label in loop.blocks:
                depth[label] = max(depth[label], loop.depth)
        return depth

    def __repr__(self) -> str:  # pragma: no cover
        return "<LoopNestForest %s: %d top-level>" % (
            self.function.name, len(self.top_level))


def _natural_loop(function: Function, header: str,
                  tail: str) -> Set[str]:
    """Blocks of the natural loop of back edge ``tail -> header``."""
    preds = function.predecessors_map()
    members = {header, tail}
    # Walk predecessors from the tail, but never *through* the header: the
    # loop body is everything that reaches the back edge without leaving
    # through the header (handles self-loops correctly).
    stack = [tail] if tail != header else []
    while stack:
        node = stack.pop()
        for pred in preds[node]:
            if pred not in members:
                members.add(pred)
                stack.append(pred)
    return members


def loop_nest_forest(function: Function) -> LoopNestForest:
    """Find all natural loops (dominator back edges); loops sharing a header
    are merged, as usual.  Irreducible cycles (back edges to non-dominating
    headers) are ignored — the front-ends in this repo emit reducible code.
    """
    dom = dominator_tree(function)
    loops_by_header: Dict[str, Loop] = {}
    for block in function.blocks:
        for succ in block.successors():
            if dom.contains(block.label) and dom.dominates(succ, block.label):
                loop = loops_by_header.setdefault(succ, Loop(succ))
                loop.back_edge_sources.add(block.label)
                loop.blocks |= _natural_loop(function, succ, block.label)

    loops = sorted(loops_by_header.values(), key=lambda lp: len(lp.blocks))
    # Nest loops: each loop's parent is the smallest strictly-containing one.
    for index, inner in enumerate(loops):
        for outer in loops[index + 1:]:
            if inner.header != outer.header and \
                    inner.blocks <= outer.blocks:
                inner.parent = outer
                outer.children.append(inner)
                break
    top_level = [loop for loop in loops if loop.parent is None]

    def set_depth(loop: Loop, depth: int) -> None:
        loop.depth = depth
        for child in loop.children:
            set_depth(child, depth + 1)

    for loop in top_level:
        set_depth(loop, 1)
    for loop in loops:
        loop.children.sort(key=lambda lp: lp.header)
    top_level.sort(key=lambda lp: lp.header)
    return LoopNestForest(function, top_level, loops_by_header)


def loop_trip_count_estimate(loop: Loop, profile) -> float:
    """Average trip count from profile weights: header executions per entry.

    Entries = executions of edges into the header from outside the loop.
    """
    entries = 0.0
    preds_map = profile.function.predecessors_map()
    for pred in preds_map.get(loop.header, ()):
        if pred not in loop.blocks:
            entries += profile.edge_weight(pred, loop.header)
    header_weight = profile.block_weight(loop.header)
    if entries <= 0:
        return header_weight if header_weight > 0 else 0.0
    return header_weight / entries
