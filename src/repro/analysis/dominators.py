"""Dominator and postdominator trees (Cooper-Harvey-Kennedy).

Postdominance is computed on the reverse CFG against a single *virtual exit*
node (:data:`VIRTUAL_EXIT`) whose predecessors are all ``exit`` blocks, so
functions with several exits are handled uniformly.  MTCG's branch
retargeting and the control-dependence graph are built on these trees.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional

from ..ir.cfg import Function

VIRTUAL_EXIT = "<exit>"


class DominatorTree:
    """Immediate-dominator tree over block labels."""

    def __init__(self, root: str, idom: Dict[str, str]):
        self.root = root
        self.idom = idom  # node -> immediate dominator; root maps to itself
        self._children: Dict[str, List[str]] = {}
        for node, parent in idom.items():
            if node != parent:
                self._children.setdefault(parent, []).append(node)
        for children in self._children.values():
            children.sort()

    def children(self, node: str) -> List[str]:
        return self._children.get(node, [])

    def dominates(self, a: str, b: str) -> bool:
        """True iff ``a`` dominates ``b`` (reflexive)."""
        node: Optional[str] = b
        while node is not None:
            if node == a:
                return True
            parent = self.idom.get(node)
            node = parent if parent != node else None
        return False

    def strictly_dominates(self, a: str, b: str) -> bool:
        return a != b and self.dominates(a, b)

    def walk_up(self, node: str) -> Iterable[str]:
        """Yield ``node`` and then each ancestor up to the root."""
        current: Optional[str] = node
        while current is not None:
            yield current
            parent = self.idom.get(current)
            current = parent if parent != current else None

    def contains(self, node: str) -> bool:
        return node in self.idom


def _reverse_postorder(entry: str,
                       successors: Mapping[str, Iterable[str]]) -> List[str]:
    visited = set()
    order: List[str] = []
    stack: List = [(entry, iter(successors.get(entry, ())))]
    visited.add(entry)
    while stack:
        node, it = stack[-1]
        advanced = False
        for succ in it:
            if succ not in visited:
                visited.add(succ)
                stack.append((succ, iter(successors.get(succ, ()))))
                advanced = True
                break
        if not advanced:
            stack.pop()
            order.append(node)
    order.reverse()
    return order


def _compute_idoms(entry: str, successors: Mapping[str, Iterable[str]]
                   ) -> Dict[str, str]:
    """Cooper-Harvey-Kennedy iterative algorithm."""
    order = _reverse_postorder(entry, successors)
    index = {node: i for i, node in enumerate(order)}
    predecessors: Dict[str, List[str]] = {node: [] for node in order}
    for node in order:
        for succ in successors.get(node, ()):
            if succ in index:
                predecessors[succ].append(node)

    idom: Dict[str, str] = {entry: entry}

    def intersect(a: str, b: str) -> str:
        while a != b:
            while index[a] > index[b]:
                a = idom[a]
            while index[b] > index[a]:
                b = idom[b]
        return a

    changed = True
    while changed:
        changed = False
        for node in order:
            if node == entry:
                continue
            candidates = [p for p in predecessors[node] if p in idom]
            if not candidates:
                continue
            new_idom = candidates[0]
            for other in candidates[1:]:
                new_idom = intersect(new_idom, other)
            if idom.get(node) != new_idom:
                idom[node] = new_idom
                changed = True
    return idom


def dominator_tree(function: Function) -> DominatorTree:
    successors = {block.label: list(block.successors())
                  for block in function.blocks}
    entry = function.entry.label
    return DominatorTree(entry, _compute_idoms(entry, successors))


def postdominator_tree(function: Function) -> DominatorTree:
    """Postdominator tree rooted at :data:`VIRTUAL_EXIT`.

    Blocks that cannot reach any exit (e.g. intentionally-infinite loops)
    do not appear in the tree; callers must treat them as postdominated by
    nothing.
    """
    reverse: Dict[str, List[str]] = {VIRTUAL_EXIT: []}
    for block in function.blocks:
        reverse.setdefault(block.label, [])
    for block in function.blocks:
        for succ in block.successors():
            reverse[succ].append(block.label)
    for exit_label in function.exit_blocks():
        reverse[VIRTUAL_EXIT].append(exit_label)
    idom = _compute_idoms(VIRTUAL_EXIT, reverse)
    return DominatorTree(VIRTUAL_EXIT, idom)
