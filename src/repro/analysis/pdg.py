"""The Program Dependence Graph (Ferrante-Ottenstein-Warren).

Nodes are instructions (by iid).  Arcs carry a :class:`DepKind`:

* ``REGISTER`` — def-use through a virtual register (from reaching
  definitions, including loop-carried arcs around back edges);
* ``MEMORY`` — may-alias load/store ordering (from the alias analysis);
* ``CONTROL`` — branch-to-controlled-instruction arcs (from the CDG).

This is the substrate of GMT instruction scheduling: the partitioner
consumes it, and MTCG inserts communication for every arc that crosses
threads (Figure 2 of both papers).
"""

from __future__ import annotations

import enum
from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..ir.cfg import Function
from .alias import AliasAnalysis
from .control_dependence import (ControlDependenceGraph,
                                 control_dependence_graph)
from .memdep import memory_dependences
from .reaching_defs import register_dependences


class DepKind(enum.Enum):
    REGISTER = "register"
    MEMORY = "memory"
    CONTROL = "control"


class DependenceArc:
    __slots__ = ("source", "target", "kind", "register")

    def __init__(self, source: int, target: int, kind: DepKind,
                 register: Optional[str] = None):
        self.source = source
        self.target = target
        self.kind = kind
        self.register = register

    def key(self) -> Tuple:
        return (self.source, self.target, self.kind.value, self.register)

    def __eq__(self, other) -> bool:
        return isinstance(other, DependenceArc) and self.key() == other.key()

    def __hash__(self) -> int:
        return hash(self.key())

    def __repr__(self) -> str:  # pragma: no cover
        label = self.register or self.kind.value
        return "<%d -%s-> %d>" % (self.source, label, self.target)


class PDG:
    """The program dependence graph of one function."""

    def __init__(self, function: Function, arcs: Iterable[DependenceArc],
                 cdg: ControlDependenceGraph, alias: AliasAnalysis):
        self.function = function
        self.arcs: List[DependenceArc] = sorted(set(arcs),
                                                key=DependenceArc.key)
        self.cdg = cdg
        self.alias = alias
        self.nodes: List[int] = sorted(i.iid
                                       for i in function.instructions())
        self._out: Dict[int, List[DependenceArc]] = {n: []
                                                     for n in self.nodes}
        self._in: Dict[int, List[DependenceArc]] = {n: [] for n in self.nodes}
        for arc in self.arcs:
            self._out[arc.source].append(arc)
            self._in[arc.target].append(arc)

    def out_arcs(self, iid: int) -> List[DependenceArc]:
        return self._out.get(iid, [])

    def in_arcs(self, iid: int) -> List[DependenceArc]:
        return self._in.get(iid, [])

    def successors_map(self, kinds: Optional[Set[DepKind]] = None
                       ) -> Dict[int, List[int]]:
        """Adjacency (iid -> target iids), optionally restricted by kind."""
        result: Dict[int, List[int]] = {n: [] for n in self.nodes}
        for arc in self.arcs:
            if kinds is None or arc.kind in kinds:
                result[arc.source].append(arc.target)
        return result

    def arcs_of_kind(self, kind: DepKind) -> List[DependenceArc]:
        return [arc for arc in self.arcs if arc.kind is kind]

    def cross_thread_arcs(self, assignment: Dict[int, int]
                          ) -> List[DependenceArc]:
        """Arcs whose endpoints land in different threads under
        ``assignment`` (iid -> thread id)."""
        return [arc for arc in self.arcs
                if assignment[arc.source] != assignment[arc.target]]

    def __repr__(self) -> str:  # pragma: no cover
        return "<PDG %s: %d nodes, %d arcs>" % (
            self.function.name, len(self.nodes), len(self.arcs))


def build_pdg(function: Function,
              alias: Optional[AliasAnalysis] = None) -> PDG:
    """Construct the full PDG: register, memory, and control arcs."""
    if alias is None:
        alias = AliasAnalysis(function)
    arcs: List[DependenceArc] = []

    for def_iid, use_iid, register in register_dependences(function):
        arcs.append(DependenceArc(def_iid, use_iid, DepKind.REGISTER,
                                  register))

    for source, target in memory_dependences(function, alias):
        arcs.append(DependenceArc(source, target, DepKind.MEMORY))

    cdg = control_dependence_graph(function)
    for block in function.blocks:
        for branch_label, _outcome in cdg.deps_of(block.label):
            branch = function.block(branch_label).terminator
            if branch is None or not branch.is_branch():
                continue
            for instruction in block:
                if instruction.iid != branch.iid:
                    arcs.append(DependenceArc(branch.iid, instruction.iid,
                                              DepKind.CONTROL))
    return PDG(function, arcs, cdg, alias)
