"""Shared data-flow helpers.

All the bit-vector style analyses in this package (liveness, reaching
definitions, COCO's thread-aware safety) are round-robin worklist solvers
over block-level transfer functions, with a final in-block walk to recover
per-instruction facts.  This module holds the pieces they share.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from ..ir.cfg import Function
from ..ir.instructions import Instruction, Opcode


def instruction_uses(instruction: Instruction,
                     function: Function) -> Tuple[str, ...]:
    """Registers an instruction uses.  The ``exit`` terminator counts as
    using every declared live-out register: values escaping the region are
    consumed "after" it, and modeling that as a use at exit is what forces
    MTCG to route final values to the exit thread."""
    if instruction.op is Opcode.EXIT:
        return tuple(function.live_outs)
    return instruction.srcs


def instruction_defs(instruction: Instruction) -> Tuple[str, ...]:
    return instruction.defined_registers()


def worklist_order(function: Function, forward: bool) -> List[str]:
    """Block iteration order that converges fast: layout order for forward
    problems, reverse layout order for backward problems (the builders emit
    blocks roughly in reverse-postorder already)."""
    labels = [block.label for block in function.blocks]
    return labels if forward else list(reversed(labels))


def solve_backward(function: Function,
                   gen: Dict[str, Set], kill: Dict[str, Set],
                   boundary: Dict[str, Set]) -> Dict[str, Set]:
    """Backward may-analysis (union meet):
    ``out[b] = U in[s] for s in succ(b)  (or boundary[b] for exits)``;
    ``in[b] = gen[b] | (out[b] - kill[b])``.

    Returns ``out`` per block; callers walk blocks backward for
    per-instruction facts.
    """
    out: Dict[str, Set] = {b.label: set(boundary.get(b.label, set()))
                           for b in function.blocks}
    in_: Dict[str, Set] = {b.label: set() for b in function.blocks}
    order = worklist_order(function, forward=False)
    changed = True
    while changed:
        changed = False
        for label in order:
            block = function.block(label)
            new_out = set(boundary.get(label, set()))
            for succ in block.successors():
                new_out |= in_[succ]
            new_in = gen[label] | (new_out - kill[label])
            if new_out != out[label] or new_in != in_[label]:
                out[label] = new_out
                in_[label] = new_in
                changed = True
    return out


def solve_forward_union(function: Function,
                        gen: Dict[str, Set], kill: Dict[str, Set],
                        entry_fact: Set) -> Dict[str, Set]:
    """Forward may-analysis (union meet).  Returns ``in`` per block."""
    in_: Dict[str, Set] = {b.label: set() for b in function.blocks}
    out: Dict[str, Set] = {b.label: set() for b in function.blocks}
    preds = function.predecessors_map()
    entry = function.entry.label
    order = worklist_order(function, forward=True)
    changed = True
    while changed:
        changed = False
        for label in order:
            new_in = set(entry_fact) if label == entry else set()
            for pred in preds[label]:
                new_in |= out[pred]
            new_out = gen[label] | (new_in - kill[label])
            if new_in != in_[label] or new_out != out[label]:
                in_[label] = new_in
                out[label] = new_out
                changed = True
    return in_
