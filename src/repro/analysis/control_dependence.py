"""Control dependence (Ferrante-Ottenstein-Warren, via postdominance).

Block ``X`` is control dependent on CFG edge ``(A, B)`` iff ``X``
postdominates ``B`` but does not strictly postdominate ``A``.  We record the
dependence as ``(A, taken)`` — the branch block and which outcome leads to
``X`` — because MTCG duplicates the *branch instruction* of ``A`` in threads
that need the dependence.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from ..ir.cfg import Function
from .dominators import DominatorTree, postdominator_tree

# A control dependence: (branch block label, branch outcome index 0/1).
ControlDep = Tuple[str, int]


class ControlDependenceGraph:
    def __init__(self, function: Function,
                 deps: Dict[str, Set[ControlDep]],
                 postdom: DominatorTree):
        self.function = function
        self._deps = deps
        self.postdom = postdom

    def deps_of(self, block_label: str) -> Set[ControlDep]:
        """Control dependences of a block: set of (branch block, outcome)."""
        return self._deps.get(block_label, set())

    def controlling_branches(self, block_label: str) -> Set[str]:
        return {branch for branch, _ in self.deps_of(block_label)}

    def dependents_of_branch(self, branch_label: str) -> List[str]:
        """Blocks control dependent on the branch in ``branch_label``."""
        return sorted(label for label, deps in self._deps.items()
                      if any(branch == branch_label for branch, _ in deps))

    def transitive_controlling_branches(self, block_label: str) -> Set[str]:
        """All branches that (transitively) control a block: the closure of
        ``controlling_branches`` through the branches' own blocks."""
        result: Set[str] = set()
        frontier = list(self.controlling_branches(block_label))
        while frontier:
            branch = frontier.pop()
            if branch in result:
                continue
            result.add(branch)
            frontier.extend(self.controlling_branches(branch))
        return result


def control_dependence_graph(function: Function) -> ControlDependenceGraph:
    postdom = postdominator_tree(function)
    deps: Dict[str, Set[ControlDep]] = {block.label: set()
                                        for block in function.blocks}
    for block in function.blocks:
        successors = block.successors()
        if len(successors) < 2:
            continue
        for outcome, succ in enumerate(successors):
            if not postdom.contains(succ):
                continue
            # Walk the postdominator tree from succ up to (exclusive) the
            # immediate postdominator of the branch block.
            stop = postdom.idom.get(block.label)
            node = succ
            while node is not None and node != stop:
                # Note: node == block.label is allowed — a loop branch is
                # control dependent on itself (it governs its own
                # re-execution), which the relevance closure relies on.
                deps.setdefault(node, set()).add((block.label, outcome))
                parent = postdom.idom.get(node)
                if parent == node:
                    break
                node = parent
    return ControlDependenceGraph(function, deps, postdom)
