"""Consistent request→node sharding via rendezvous hashing.

Highest-random-weight (rendezvous) hashing beats a ring of virtual
nodes for small clusters: every (key, node) pair gets a deterministic
weight — ``digest("cluster:shard", key, node)`` from the pipeline's
fingerprint module, so shards are stable across processes and
platforms — and a key lands on the highest-weighted *healthy* node.
Adding or removing one node remaps only the keys that scored it
highest (~1/N of traffic); everything else keeps its placement, which
keeps each node's local artifact tier hot.

:func:`rank_nodes` returns the full preference order, which doubles as
the failover order: when the primary dies mid-request the coordinator
walks the same ranking, so retries are deterministic too.
"""

from __future__ import annotations

from typing import List, Sequence

from ..api import digest


def rank_nodes(key: str, nodes: Sequence[str]) -> List[str]:
    """All ``nodes`` ordered by descending rendezvous weight for
    ``key`` (ties — astronomically unlikely — break on node id so the
    order is still total and deterministic)."""
    return sorted(nodes,
                  key=lambda node: (digest("cluster:shard", key, node),
                                    node),
                  reverse=True)


def shard_node(key: str, nodes: Sequence[str]) -> str:
    """The primary owner of ``key`` among ``nodes`` (which must be
    non-empty)."""
    if not nodes:
        raise ValueError("no nodes to shard across")
    return rank_nodes(key, nodes)[0]
