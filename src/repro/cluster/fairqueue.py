"""Async admission with per-tenant fair queueing for the coordinator.

Where a single node sheds instantly (:mod:`repro.service.admission`),
the coordinator *queues*: each tenant gets a bounded FIFO, and a fixed
pool of dispatch slots is granted round-robin across the tenants that
have waiters — a tenant flooding its queue delays only itself; other
tenants' requests keep flowing at their fair share.  Only a tenant
whose *own* queue is full is shed with 429.

The mechanics are ticket-based so HTTP handler threads can block on
their own admission: ``submit`` either raises
:class:`TenantQueueFullError` or returns a :class:`Ticket`; the caller
waits on it, runs the request, then must call ``release`` so the next
round-robin grant fires.
"""

from __future__ import annotations

import threading
from collections import OrderedDict, deque
from typing import Deque, Dict, Optional

from ..service.admission import DEFAULT_TENANT


class TenantQueueFullError(Exception):
    """This tenant's queue is at capacity (HTTP 429)."""

    def __init__(self, tenant: str, limit: int):
        super().__init__("tenant %r queue full (limit %d)"
                         % (tenant, limit))
        self.tenant = tenant
        self.limit = limit


class Ticket:
    """One queued request's admission handle."""

    def __init__(self, tenant: str):
        self.tenant = tenant
        self._granted = threading.Event()

    def wait(self, timeout: Optional[float] = None) -> bool:
        return self._granted.wait(timeout)

    def _grant(self) -> None:
        self._granted.set()


class TenantFairQueue:
    """Bounded per-tenant FIFOs drained round-robin into ``slots``
    concurrent dispatch grants."""

    def __init__(self, slots: int, tenant_depth: int = 16):
        if slots < 1:
            raise ValueError("slots must be >= 1")
        if tenant_depth < 1:
            raise ValueError("tenant_depth must be >= 1")
        self.slots = slots
        self.tenant_depth = tenant_depth
        self._lock = threading.Lock()
        #: tenant → waiting tickets.  An OrderedDict keeps round-robin
        #: order stable: the tenant just granted moves to the back.
        self._queues: "OrderedDict[str, Deque[Ticket]]" = OrderedDict()
        self._in_flight = 0
        self.admitted_total = 0
        self.shed_total = 0
        self._shed_by_tenant: Dict[str, int] = {}
        self._admitted_by_tenant: Dict[str, int] = {}

    def submit(self, tenant: str = DEFAULT_TENANT) -> Ticket:
        """Queue one request.  Grants immediately when a slot is free
        and no earlier waiter exists; raises
        :class:`TenantQueueFullError` when this tenant's FIFO is full."""
        ticket = Ticket(tenant)
        with self._lock:
            queue = self._queues.get(tenant)
            if queue is None:
                queue = deque()
                self._queues[tenant] = queue
            if len(queue) >= self.tenant_depth:
                self.shed_total += 1
                self._shed_by_tenant[tenant] = \
                    self._shed_by_tenant.get(tenant, 0) + 1
                raise TenantQueueFullError(tenant, self.tenant_depth)
            queue.append(ticket)
            self._pump_locked()
        return ticket

    def release(self, ticket: Ticket) -> None:
        """Return ``ticket``'s slot and grant the next waiter."""
        with self._lock:
            if self._in_flight > 0:
                self._in_flight -= 1
            self._pump_locked()

    def cancel(self, ticket: Ticket) -> None:
        """Remove a never-granted ticket (client gave up waiting)."""
        with self._lock:
            queue = self._queues.get(ticket.tenant)
            if queue is not None:
                try:
                    queue.remove(ticket)
                except ValueError:
                    pass

    def _pump_locked(self) -> None:
        """Grant free slots round-robin across tenants with waiters."""
        while self._in_flight < self.slots:
            granted = False
            for tenant in list(self._queues.keys()):
                queue = self._queues[tenant]
                if not queue:
                    continue
                ticket = queue.popleft()
                self._in_flight += 1
                self.admitted_total += 1
                self._admitted_by_tenant[tenant] = \
                    self._admitted_by_tenant.get(tenant, 0) + 1
                # Rotate the granted tenant to the back of the
                # round-robin order.
                self._queues.move_to_end(tenant)
                ticket._grant()
                granted = True
                if self._in_flight >= self.slots:
                    break
            if not granted:
                break
        # Drop empty FIFOs so the tenant map cannot grow unboundedly.
        for tenant in [t for t, q in self._queues.items() if not q]:
            del self._queues[tenant]

    def depths(self) -> Dict[str, int]:
        with self._lock:
            return {tenant: len(queue)
                    for tenant, queue in self._queues.items() if queue}

    def stats(self) -> Dict[str, object]:
        """Queue gauges + per-tenant counters for ``/metrics``."""
        with self._lock:
            tenants = sorted(set(self._queues)
                             | set(self._shed_by_tenant)
                             | set(self._admitted_by_tenant))
            return {
                "slots": self.slots,
                "in_flight": self._in_flight,
                "tenant_depth_limit": self.tenant_depth,
                "admitted_total": self.admitted_total,
                "shed_total": self.shed_total,
                "tenants": {
                    tenant: {
                        "depth": len(self._queues.get(tenant, ())),
                        "admitted":
                            self._admitted_by_tenant.get(tenant, 0),
                        "shed": self._shed_by_tenant.get(tenant, 0),
                    } for tenant in tenants},
            }
