"""Worker-node registry: membership, heartbeats, health.

The coordinator tracks every node that has registered.  A node is
*healthy* while its most recent heartbeat is younger than
``heartbeat_timeout`` seconds and it has not accumulated consecutive
dispatch failures past ``failure_threshold``; only healthy nodes
receive shards.  Failures reset on the next successful dispatch or
heartbeat — a node that died and was restarted (same node id) simply
re-registers and rejoins the ring with its placement intact.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, List, Optional

#: Heartbeats a node may miss before it is sharded around.
MISSED_HEARTBEATS = 3

#: Consecutive dispatch failures that mark a node unhealthy even while
#: its heartbeats still arrive (a wedged evaluator on a live host).
FAILURE_THRESHOLD = 3


class NodeInfo:
    """One worker node's registration + live health state."""

    def __init__(self, node_id: str, url: str, registered_at: float):
        self.node_id = node_id
        self.url = url.rstrip("/")
        self.registered_at = registered_at
        self.last_heartbeat = registered_at
        self.consecutive_failures = 0
        self.dispatched = 0
        self.failed = 0
        #: Latest gauge document published on the monitoring channel.
        self.gauges: Dict[str, object] = {}

    def as_dict(self) -> Dict[str, object]:
        return {"node_id": self.node_id, "url": self.url,
                "registered_at": self.registered_at,
                "last_heartbeat": self.last_heartbeat,
                "consecutive_failures": self.consecutive_failures,
                "dispatched": self.dispatched, "failed": self.failed}


class NodeRegistry:
    """Thread-safe membership + health book-keeping for the cluster."""

    def __init__(self, heartbeat_timeout: float = 6.0,
                 failure_threshold: int = FAILURE_THRESHOLD):
        self.heartbeat_timeout = heartbeat_timeout
        self.failure_threshold = failure_threshold
        self._lock = threading.Lock()
        self._nodes: Dict[str, NodeInfo] = {}

    def register(self, node_id: str, url: str) -> NodeInfo:
        with self._lock:
            node = NodeInfo(node_id, url, time.time())
            self._nodes[node_id] = node  # re-registration resets health
            return node

    def heartbeat(self, node_id: str) -> bool:
        """Record a heartbeat; ``False`` when the node is unknown (it
        must re-register, e.g. after a coordinator restart)."""
        with self._lock:
            node = self._nodes.get(node_id)
            if node is None:
                return False
            node.last_heartbeat = time.time()
            return True

    def node(self, node_id: str) -> Optional[NodeInfo]:
        with self._lock:
            return self._nodes.get(node_id)

    def mark_dispatch(self, node_id: str, ok: bool) -> None:
        """Record one dispatch outcome for health tracking."""
        with self._lock:
            node = self._nodes.get(node_id)
            if node is None:
                return
            node.dispatched += 1
            if ok:
                node.consecutive_failures = 0
            else:
                node.failed += 1
                node.consecutive_failures += 1

    def update_gauges(self, node_id: str,
                      gauges: Dict[str, object]) -> bool:
        with self._lock:
            node = self._nodes.get(node_id)
            if node is None:
                return False
            node.gauges = dict(gauges)
            node.last_heartbeat = time.time()
            return True

    def _is_healthy(self, node: NodeInfo, now: float) -> bool:
        return (now - node.last_heartbeat <= self.heartbeat_timeout
                and node.consecutive_failures < self.failure_threshold)

    def healthy(self) -> List[str]:
        """Node ids eligible for sharding, sorted for determinism."""
        now = time.time()
        with self._lock:
            return sorted(node_id for node_id, node in self._nodes.items()
                          if self._is_healthy(node, now))

    def url_of(self, node_id: str) -> Optional[str]:
        with self._lock:
            node = self._nodes.get(node_id)
            return node.url if node is not None else None

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """Full registry state for ``/metrics`` and the dashboard."""
        now = time.time()
        with self._lock:
            out: Dict[str, Dict[str, object]] = {}
            for node_id, node in sorted(self._nodes.items()):
                doc = node.as_dict()
                doc["healthy"] = self._is_healthy(node, now)
                doc["age_seconds"] = round(now - node.last_heartbeat, 3)
                doc["gauges"] = dict(node.gauges)
                out[node_id] = doc
            return out
