"""The ``/dashboard`` page: cluster state as dependency-free HTML.

Server-rendered from the same aggregate the JSON ``/metrics`` endpoint
exports — per-node health/gauge cards, the shard distribution, tenant
queue depths, and the recent monitoring-channel feed.  A ``<meta
refresh>`` keeps it live without any JavaScript, so it works from
``curl``-grade environments and never adds a frontend dependency.
"""

from __future__ import annotations

import html
from typing import Dict, List

_STYLE = """
body { font-family: system-ui, sans-serif; margin: 1.5em; color: #222; }
h1 { font-size: 1.4em; } h2 { font-size: 1.1em; margin-top: 1.2em; }
table { border-collapse: collapse; margin: 0.5em 0; }
th, td { border: 1px solid #ccc; padding: 0.25em 0.6em; text-align: left;
         font-size: 0.9em; }
th { background: #f2f2f2; }
.ok { color: #0a7d32; font-weight: 600; }
.bad { color: #b3261e; font-weight: 600; }
.muted { color: #777; font-size: 0.85em; }
"""


def _esc(value: object) -> str:
    return html.escape(str(value))


def _node_rows(nodes: Dict[str, Dict[str, object]]) -> str:
    rows = []
    for node_id, node in sorted(nodes.items()):
        gauges = node.get("gauges") or {}
        queue = gauges.get("queue") or {}
        counters = gauges.get("counters") or {}
        healthy = bool(node.get("healthy"))
        rows.append(
            "<tr><td>%s</td><td class=\"%s\">%s</td><td>%s</td>"
            "<td>%s</td><td>%s</td><td>%s</td><td>%s</td><td>%s</td></tr>"
            % (_esc(node_id), "ok" if healthy else "bad",
               "healthy" if healthy else "unhealthy",
               _esc(node.get("url", "")),
               _esc(node.get("dispatched", 0)),
               _esc(node.get("failed", 0)),
               _esc(queue.get("depth", "–")),
               _esc(queue.get("in_flight", "–")),
               _esc(counters.get("responses_ok", "–"))))
    return "".join(rows) or \
        "<tr><td colspan=\"9\" class=\"muted\">no nodes registered</td></tr>"


def _shard_rows(shards: Dict[str, int]) -> str:
    total = sum(shards.values()) or 1
    rows = []
    for node_id, count in sorted(shards.items()):
        rows.append("<tr><td>%s</td><td>%d</td><td>%.1f%%</td></tr>"
                    % (_esc(node_id), count, 100.0 * count / total))
    return "".join(rows) or \
        "<tr><td colspan=\"3\" class=\"muted\">no requests routed</td></tr>"


def _tenant_rows(tenants: Dict[str, Dict[str, object]]) -> str:
    rows = []
    for tenant, stats in sorted(tenants.items()):
        rows.append(
            "<tr><td>%s</td><td>%s</td><td>%s</td><td>%s</td></tr>"
            % (_esc(tenant), _esc(stats.get("depth", 0)),
               _esc(stats.get("admitted", 0)), _esc(stats.get("shed", 0))))
    return "".join(rows) or \
        "<tr><td colspan=\"4\" class=\"muted\">no tenants yet</td></tr>"


def _event_rows(events: List[Dict[str, object]]) -> str:
    rows = []
    for event in reversed(events[-12:]):
        rows.append("<tr><td>%s</td><td>%s</td><td>%s</td></tr>"
                    % (_esc(event.get("node_id", "?")),
                       _esc(event.get("kind", "?")),
                       _esc(event.get("received_at", ""))))
    return "".join(rows) or \
        "<tr><td colspan=\"3\" class=\"muted\">channel quiet</td></tr>"


def render_dashboard(metrics: Dict[str, object]) -> str:
    """The full ``/dashboard`` HTML from a cluster metrics document."""
    cluster = metrics.get("cluster") or {}
    nodes = cluster.get("nodes") or {}
    shards = cluster.get("shard_distribution") or {}
    admission = cluster.get("admission") or {}
    tenants = admission.get("tenants") or {}
    events = cluster.get("recent_events") or []
    counters = cluster.get("counters") or {}
    healthy = sum(1 for node in nodes.values() if node.get("healthy"))
    return """<!doctype html>
<html><head><meta charset="utf-8">
<meta http-equiv="refresh" content="2">
<title>repro cluster dashboard</title><style>%s</style></head><body>
<h1>repro cluster dashboard</h1>
<p class="muted">%d/%d nodes healthy · %s routed · %s failovers ·
%s proxy errors · uptime %.0fs</p>
<h2>Nodes</h2>
<table><tr><th>node</th><th colspan="2">health</th><th>url</th>
<th>dispatched</th><th>failed</th><th>queue</th><th>in-flight</th>
<th>ok</th></tr>%s</table>
<h2>Shard distribution</h2>
<table><tr><th>node</th><th>requests</th><th>share</th></tr>%s</table>
<h2>Tenant queues</h2>
<table><tr><th>tenant</th><th>depth</th><th>admitted</th><th>shed</th>
</tr>%s</table>
<h2>Monitoring channel</h2>
<table><tr><th>node</th><th>event</th><th>received</th></tr>%s</table>
</body></html>""" % (
        _STYLE, healthy, len(nodes),
        _esc(counters.get("routed_total", 0)),
        _esc(counters.get("failovers_total", 0)),
        _esc(counters.get("proxy_errors_total", 0)),
        float(metrics.get("uptime_seconds", 0.0)),
        _node_rows(nodes), _shard_rows(shards),
        _tenant_rows(tenants), _event_rows(events))
