"""Multi-node sharded scheduling: coordinator + worker daemons.

``repro serve`` grows two cluster roles on top of the single-host
service (:mod:`repro.service`):

* ``--role coordinator`` — :class:`~repro.cluster.coordinator.
  CoordinatorDaemon`: accepts ``POST /v1/evaluate`` exactly like a
  standalone daemon but *routes* each request to a registered worker
  node chosen by rendezvous-hashing its ``request_key()``
  (:mod:`~repro.cluster.hashring`), with retry-on-another-node failover
  when a worker dies mid-request.  It also serves the remote artifact
  store (``/store/<stage>/<key>``, see :mod:`repro.pipeline.store`),
  aggregates the monitoring channel into cluster-wide ``/metrics``, and
  renders a dependency-free ``/dashboard`` HTML page.
* ``--role worker --coordinator URL`` — :class:`~repro.cluster.worker.
  WorkerNode`: a full scheduling daemon that registers with the
  coordinator, heartbeats, reads/writes artifacts through the
  coordinator's store (read-through replication into its local disk),
  and publishes queue/latency/cache/health events on the monitoring
  channel.

The shape mirrors agent-coordination systems (workers = agents
publishing to a dedicated monitoring channel; the coordinator = the
dashboard/placement tier) and hierarchical thread schedulers (the
coordinator places requests onto nodes the way placers put threads
onto clusters).  Determinism covenant: a cluster of N workers returns
byte-identical ``EvaluateResult`` documents to a single-node daemon —
the coordinator never rewrites worker responses, and request keys
never depend on tenant, node, or transport.
"""

from .coordinator import CoordinatorDaemon, CoordinatorService
from .fairqueue import TenantFairQueue
from .hashring import rank_nodes, shard_node
from .monitor import MonitoringChannel
from .registry import NodeInfo, NodeRegistry
from .worker import WorkerNode

__all__ = [
    "CoordinatorDaemon", "CoordinatorService", "MonitoringChannel",
    "NodeInfo", "NodeRegistry", "TenantFairQueue", "WorkerNode",
    "rank_nodes", "shard_node",
]
