"""The coordinator daemon: shard, proxy, failover, aggregate.

``repro serve --role coordinator`` accepts the exact request surface of
a standalone daemon (``POST /v1/evaluate``) but owns no worker pool:
each admitted request is routed to the worker node that rendezvous-
hashing ranks highest for its ``request_key()`` and the node's response
bytes are passed through **verbatim** — the coordinator never re-shapes
a result document, which is what makes cluster results byte-identical
to single-node serve.  A connection-level failure (the node died
mid-request) marks the node, walks to the next node in the same
deterministic ranking, and counts a failover; an HTTP *error document*
from a live node (400/429/504...) is a real answer and passes through.

Beyond routing the coordinator serves:

* ``POST /cluster/register`` / ``/cluster/heartbeat`` — membership
  (:mod:`~repro.cluster.registry`);
* ``POST /cluster/events`` — the monitoring channel ingest
  (:mod:`~repro.cluster.monitor`);
* ``GET``/``PUT /store/<stage>/<key>`` — the remote artifact store
  workers read through (:mod:`repro.pipeline.store`);
* ``GET /metrics`` — cluster-wide aggregate (nodes, shard
  distribution, tenant queues, store traffic, recent events);
* ``GET /dashboard`` — the same aggregate as server-rendered HTML.

Admission is *queueing*, not shedding: a bounded per-tenant FIFO pool
drained round-robin (:mod:`~repro.cluster.fairqueue`), so a flooding
tenant saturates only its own queue while others keep their fair share
of dispatch slots.
"""

from __future__ import annotations

import json
import re
import socket
import sys
import threading
import time
import urllib.error
import urllib.request
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, Optional, Tuple

from ..api import (API_SCHEMA_VERSION, EvaluateRequest, LocalStore,
                   RequestValidationError, default_cache_dir)
from ..service.admission import DEFAULT_TENANT
from ..service.config import ServiceConfig
from .dashboard import render_dashboard
from .fairqueue import TenantFairQueue, TenantQueueFullError
from .hashring import rank_nodes
from .monitor import MonitoringChannel
from .registry import MISSED_HEARTBEATS, NodeRegistry

METRICS_SCHEMA = "repro.cluster.metrics/v1"

MAX_BODY_BYTES = 1 << 20

#: Allowed characters in store stage/key path segments (anything else
#: is a 400 — keys are hex digests, stages are short slugs).
_SEGMENT = re.compile(r"^[A-Za-z0-9._-]+$")

#: Extra seconds on top of the per-request budget when proxying to a
#: node: the node itself degrades (stale/504) at ``request_timeout``,
#: so the coordinator only hits this on a truly wedged connection.
PROXY_SLACK = 10.0

COUNTERS = (
    "requests_total", "routed_total", "failovers_total",
    "proxy_errors_total", "no_nodes_total", "shed_total",
    "validation_errors", "store_gets", "store_get_misses", "store_puts",
    "events_received",
)


def _json_bytes(document: Dict[str, object]) -> bytes:
    return json.dumps(document).encode("utf-8")


class CoordinatorService:
    """HTTP-agnostic coordinator core: admission + routing + aggregate."""

    def __init__(self, config: ServiceConfig,
                 store_directory: Optional[str] = None):
        self.config = config.validate()
        self.registry = NodeRegistry(
            heartbeat_timeout=MISSED_HEARTBEATS
            * config.heartbeat_interval)
        self.queue = TenantFairQueue(
            slots=config.queue_limit,
            tenant_depth=config.tenant_limit or config.queue_limit)
        self.channel = MonitoringChannel()
        self.store = LocalStore(store_directory or default_cache_dir())
        self.started_at = time.time()
        self._lock = threading.Lock()
        self.counters: Dict[str, int] = {name: 0 for name in COUNTERS}
        self._shards: Dict[str, int] = {}

    def incr(self, name: str, amount: int = 1) -> None:
        with self._lock:
            self.counters[name] = self.counters.get(name, 0) + amount

    # -- membership --------------------------------------------------------

    def register_node(self, node_id: str, url: str) -> Dict[str, object]:
        self.registry.register(node_id, url)
        return {"ok": True, "node_id": node_id,
                "heartbeat_interval": self.config.heartbeat_interval}

    def ingest_events(self, node_id: str, events) -> Dict[str, object]:
        if not isinstance(events, list):
            events = []
        accepted = self.channel.publish(node_id, events)
        self.incr("events_received", accepted)
        known = True
        for event in events:
            if isinstance(event, dict) and event.get("kind") == "gauges":
                gauges = event.get("gauges")
                if isinstance(gauges, dict):
                    known = self.registry.update_gauges(node_id, gauges)
        return {"ok": True, "accepted": accepted, "known": known}

    # -- request routing ---------------------------------------------------

    def handle_evaluate(self, body: object,
                        tenant: str = DEFAULT_TENANT
                        ) -> Tuple[int, bytes, str, Optional[str]]:
        """Admit, shard, and proxy one evaluation request.  Returns
        ``(status, response_bytes, outcome, request_key)`` — response
        bytes are the owning node's answer verbatim."""
        self.incr("requests_total")
        try:
            request = EvaluateRequest.from_dict(body)
        except RequestValidationError as error:
            self.incr("validation_errors")
            return (400, _json_bytes({"error": str(error),
                                      "kind": "validation"}),
                    "invalid", None)
        key = request.request_key()
        try:
            ticket = self.queue.submit(tenant)
        except TenantQueueFullError as error:
            self.incr("shed_total")
            return (429, _json_bytes({"error": str(error), "kind": "shed",
                                      "tenant": tenant,
                                      "queue_limit": error.limit}),
                    "shed", key)
        granted = ticket.wait(self.config.request_timeout + PROXY_SLACK)
        if not granted:
            self.queue.cancel(ticket)
            self.incr("shed_total")
            return (503, _json_bytes({"error": "admission wait timed out",
                                      "kind": "overload",
                                      "tenant": tenant}),
                    "overload", key)
        try:
            return self._route(body, tenant, key)
        finally:
            self.queue.release(ticket)

    def _route(self, body: object, tenant: str, key: str
               ) -> Tuple[int, bytes, str, Optional[str]]:
        nodes = self.registry.healthy()
        if not nodes:
            self.incr("no_nodes_total")
            return (503, _json_bytes({"error": "no healthy worker nodes",
                                      "kind": "no-nodes"}),
                    "no-nodes", key)
        payload = _json_bytes(body if isinstance(body, dict) else {})
        attempts = 0
        for node_id in rank_nodes(key, nodes):
            url = self.registry.url_of(node_id)
            if url is None:
                continue
            attempts += 1
            try:
                status, raw = self._post_node(url, payload, tenant)
            except Exception:
                # Connection-level failure: the node is gone or wedged
                # — mark it and fail over along the same ranking.
                self.registry.mark_dispatch(node_id, ok=False)
                self.incr("failovers_total")
                continue
            self.registry.mark_dispatch(node_id, ok=True)
            self.incr("routed_total")
            with self._lock:
                self._shards[node_id] = self._shards.get(node_id, 0) + 1
            outcome = "ok" if status == 200 else "node-%d" % status
            return status, raw, outcome, key
        self.incr("proxy_errors_total")
        return (503,
                _json_bytes({"error": "all %d candidate nodes failed"
                             % attempts,
                             "kind": "failover-exhausted"}),
                "failover-exhausted", key)

    def _post_node(self, url: str, payload: bytes,
                   tenant: str) -> Tuple[int, bytes]:
        request = urllib.request.Request(
            url + "/v1/evaluate", data=payload, method="POST",
            headers={"Content-Type": "application/json",
                     "X-Repro-Tenant": tenant})
        timeout = self.config.request_timeout + PROXY_SLACK
        try:
            with urllib.request.urlopen(request,
                                        timeout=timeout) as reply:
                return reply.status, reply.read()
        except urllib.error.HTTPError as error:
            # A status line from a live node is an answer (400/429/
            # 504...), not a transport failure — pass it through.
            with error:
                return error.code, error.read()
        except (urllib.error.URLError, socket.timeout, OSError):
            raise

    # -- store -------------------------------------------------------------

    def store_get(self, stage: str, key: str) -> Optional[bytes]:
        blob = self.store.get(stage, key)
        if blob is None:
            self.incr("store_get_misses")
        else:
            self.incr("store_gets")
        return blob

    def store_put(self, stage: str, key: str, blob: bytes) -> None:
        self.store.put(stage, key, blob)
        self.incr("store_puts")

    @staticmethod
    def valid_segment(segment: str) -> bool:
        return bool(_SEGMENT.match(segment))

    # -- observability -----------------------------------------------------

    def health(self) -> Dict[str, object]:
        nodes = self.registry.snapshot()
        healthy = [n for n, doc in nodes.items() if doc["healthy"]]
        return {"status": "ok" if healthy else "degraded",
                "role": "coordinator",
                "nodes": len(nodes), "healthy_nodes": len(healthy),
                "uptime_seconds": time.time() - self.started_at}

    def metrics_document(self) -> Dict[str, object]:
        with self._lock:
            counters = dict(self.counters)
            shards = dict(self._shards)
        return {
            "schema": METRICS_SCHEMA,
            "role": "coordinator",
            "uptime_seconds": time.time() - self.started_at,
            "cluster": {
                "nodes": self.registry.snapshot(),
                "healthy_nodes": self.registry.healthy(),
                "shard_distribution": shards,
                "counters": counters,
                "admission": self.queue.stats(),
                "monitoring": {
                    "published_total": self.channel.published_total},
                "recent_events": self.channel.recent(20),
            },
        }


class CoordinatorDaemon:
    """HTTP front end owning one :class:`CoordinatorService`."""

    def __init__(self, config: ServiceConfig,
                 store_directory: Optional[str] = None):
        self.config = config
        self.service = CoordinatorService(config, store_directory)
        handler = _make_handler(self)
        self.server = ThreadingHTTPServer((config.host, config.port),
                                          handler)
        self.server.daemon_threads = True
        self._thread: Optional[threading.Thread] = None
        self._closed = False

    @property
    def port(self) -> int:
        return self.server.server_address[1]

    @property
    def address(self) -> str:
        return "http://%s:%d" % (self.server.server_address[0],
                                 self.port)

    def start(self) -> "CoordinatorDaemon":
        self._thread = threading.Thread(
            target=self.server.serve_forever, daemon=True,
            name="repro-coordinator-http")
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        self.log_event({"event": "serving", "role": "coordinator",
                        "address": self.address, "port": self.port,
                        "queue_limit": self.config.queue_limit,
                        "schema": API_SCHEMA_VERSION})
        try:
            self.server.serve_forever()
        finally:
            self.close()

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self.server.shutdown()
        self.server.server_close()
        if self._thread is not None:
            self._thread.join(2.0)
        self.log_event({"event": "stopped", "role": "coordinator"})

    def log_event(self, fields: Dict[str, object]) -> None:
        if self.config.quiet:
            return
        stream = self.config.log_stream or sys.stderr
        record = {"ts": round(time.time(), 3)}
        record.update(fields)
        try:
            stream.write(json.dumps(record, sort_keys=True) + "\n")
            stream.flush()
        except Exception:
            pass


def _make_handler(daemon: CoordinatorDaemon):
    service = daemon.service

    class Handler(BaseHTTPRequestHandler):
        server_version = "repro-coordinator/" + API_SCHEMA_VERSION
        protocol_version = "HTTP/1.1"

        def log_message(self, format, *args):  # noqa: A002
            pass

        # -- plumbing ------------------------------------------------------

        def _send(self, status: int, body: bytes,
                  content_type: str = "application/json",
                  retry_after: bool = False) -> None:
            self.send_response(status)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(body)))
            if retry_after:
                self.send_header("Retry-After", "1")
            self.end_headers()
            try:
                self.wfile.write(body)
            except (BrokenPipeError, ConnectionResetError):
                pass

        def _send_json(self, status: int,
                       document: Dict[str, object]) -> None:
            self._send(status, _json_bytes(document),
                       retry_after=(status == 429))

        def _log(self, status: int, outcome: str, started: float,
                 request_key: Optional[str] = None) -> None:
            daemon.log_event({
                "event": "request", "method": self.command,
                "path": self.path, "status": status,
                "seconds": round(time.perf_counter() - started, 4),
                "outcome": outcome, "request_key": request_key})

        def _read_body(self) -> Tuple[Optional[bytes], Optional[str]]:
            try:
                length = int(self.headers.get("Content-Length", "0"))
            except ValueError:
                return None, "invalid Content-Length"
            if length <= 0:
                return None, "missing request body"
            if length > MAX_BODY_BYTES:
                return None, "request body too large"
            return self.rfile.read(length), None

        def _read_json(self) -> Tuple[Optional[object], Optional[str]]:
            raw, error = self._read_body()
            if error is not None:
                return None, error
            try:
                return json.loads(raw.decode("utf-8")), None
            except (UnicodeDecodeError, json.JSONDecodeError) as error:
                return None, "invalid JSON body: %s" % (error,)

        def _store_segments(self) -> Optional[Tuple[str, str]]:
            parts = self.path.split("?", 1)[0].split("/")
            # ['', 'store', stage, key]
            if (len(parts) != 4 or parts[1] != "store"
                    or not service.valid_segment(parts[2])
                    or not service.valid_segment(parts[3])):
                return None
            return parts[2], parts[3]

        # -- routes --------------------------------------------------------

        def do_GET(self) -> None:
            started = time.perf_counter()
            path = self.path.split("?", 1)[0]
            if path == "/healthz":
                self._send_json(200, service.health())
                self._log(200, "health", started)
            elif path == "/metrics":
                self._send_json(200, service.metrics_document())
                self._log(200, "metrics", started)
            elif path == "/dashboard":
                page = render_dashboard(service.metrics_document())
                self._send(200, page.encode("utf-8"),
                           content_type="text/html; charset=utf-8")
                self._log(200, "dashboard", started)
            elif path == "/v1/schema":
                self._send_json(200, {"schema": API_SCHEMA_VERSION,
                                      "role": "coordinator"})
                self._log(200, "schema", started)
            elif path == "/cluster/nodes":
                self._send_json(200,
                                {"nodes": service.registry.snapshot()})
                self._log(200, "nodes", started)
            elif path.startswith("/store/"):
                segments = self._store_segments()
                if segments is None:
                    self._send_json(400, {"error": "bad store path",
                                          "kind": "store"})
                    self._log(400, "store-bad-path", started)
                    return
                blob = service.store_get(*segments)
                if blob is None:
                    self._send_json(404, {"error": "no such artifact",
                                          "kind": "store"})
                    self._log(404, "store-miss", started)
                else:
                    self._send(200, blob,
                               content_type="application/octet-stream")
                    self._log(200, "store-hit", started)
            else:
                self._send_json(404,
                                {"error": "no such endpoint: %s" % path,
                                 "kind": "routing"})
                self._log(404, "not-found", started)

        def do_PUT(self) -> None:
            started = time.perf_counter()
            segments = self._store_segments()
            if segments is None:
                self._send_json(404, {"error": "no such endpoint",
                                      "kind": "routing"})
                self._log(404, "not-found", started)
                return
            raw, error = self._read_body()
            if error is not None:
                self._send_json(400, {"error": error, "kind": "body"})
                self._log(400, "store-bad-body", started)
                return
            service.store_put(segments[0], segments[1], raw)
            self._send_json(200, {"ok": True})
            self._log(200, "store-put", started)

        def do_POST(self) -> None:
            started = time.perf_counter()
            path = self.path.split("?", 1)[0]
            if path == "/v1/evaluate":
                body, error = self._read_json()
                if error is not None:
                    self._send_json(400, {"error": error, "kind": "body"})
                    self._log(400, "invalid", started)
                    return
                tenant = (self.headers.get("X-Repro-Tenant")
                          or "default").strip() or "default"
                status, raw, outcome, key = \
                    service.handle_evaluate(body, tenant)
                self._send(status, raw, retry_after=(status == 429))
                self._log(status, outcome, started, key)
                return
            body, error = self._read_json()
            if error is not None:
                self._send_json(400, {"error": error, "kind": "body"})
                self._log(400, "invalid", started)
                return
            if path == "/cluster/register":
                node_id = str((body or {}).get("node_id", "")).strip()
                url = str((body or {}).get("url", "")).strip()
                if not node_id or not url:
                    self._send_json(400,
                                    {"error": "node_id and url required",
                                     "kind": "validation"})
                    self._log(400, "register-invalid", started)
                    return
                self._send_json(200, service.register_node(node_id, url))
                self._log(200, "register", started)
            elif path == "/cluster/heartbeat":
                node_id = str((body or {}).get("node_id", "")).strip()
                known = service.registry.heartbeat(node_id)
                self._send_json(200, {"ok": known, "node_id": node_id})
                self._log(200, "heartbeat", started)
            elif path == "/cluster/events":
                node_id = str((body or {}).get("node_id", "")).strip()
                document = service.ingest_events(
                    node_id, (body or {}).get("events"))
                self._send_json(200, document)
                self._log(200, "events", started)
            else:
                self._send_json(404,
                                {"error": "no such endpoint: %s" % path,
                                 "kind": "routing"})
                self._log(404, "not-found", started)

    return Handler
