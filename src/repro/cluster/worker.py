"""Worker nodes: full scheduling daemons that join a coordinator.

``repro serve --role worker --coordinator URL`` boots the ordinary
single-host daemon (:class:`repro.service.daemon.ServiceDaemon` — same
pool, admission, memo, metrics) and wires it into the cluster:

* the process-wide artifact cache is rebuilt over the coordinator's
  remote store (``REPRO_STORE_URL`` → :class:`repro.pipeline.store.
  HttpStore`), exported *before* the worker pool forks so every child
  process reads through the coordinator too — a cell computed on any
  node replicates into this node's local tier on first touch;
* a registration + heartbeat loop announces the node (stable
  ``node_id``, defaulting to ``host:port``) and keeps it in the
  coordinator's healthy set; an unknown-node heartbeat answer (e.g.
  after a coordinator restart) triggers re-registration;
* an :class:`~repro.cluster.monitor.EventPublisher` thread publishes
  the node's gauge document on the monitoring channel each period.

All cluster plumbing is best-effort: an unreachable coordinator never
stops the node from answering direct ``/v1/evaluate`` traffic.
"""

from __future__ import annotations

import json
import os
import threading
import urllib.error
import urllib.request
from typing import Dict, Optional

from ..api import STORE_URL_ENV, configure_cache
from ..service.config import ServiceConfig
from ..service.daemon import ServiceDaemon
from .monitor import EventPublisher

#: Registration retries before giving up at startup (the heartbeat
#: loop keeps retrying after that, so a late coordinator still works).
REGISTER_ATTEMPTS = 30
REGISTER_BACKOFF = 0.2


class WorkerNode:
    """One cluster member: daemon + store wiring + heartbeats."""

    def __init__(self, config: ServiceConfig,
                 store_url: Optional[str] = None):
        config.validate()
        self.config = config
        self.coordinator_url = (config.coordinator_url or "").rstrip("/")
        # Export the remote store *before* the daemon constructs its
        # pool: forked children inherit the environment, and
        # run_cell_payload's configure_cache() picks the URL up there.
        os.environ[STORE_URL_ENV] = (store_url
                                     or self.coordinator_url + "/store")
        configure_cache()
        self.daemon = ServiceDaemon(config)
        self.node_id = config.node_id or "%s:%d" % (config.host,
                                                    self.daemon.port)
        self.registered = False
        self._stop = threading.Event()
        self._heartbeat_thread: Optional[threading.Thread] = None
        self.publisher = EventPublisher(
            snapshot_fn=self._gauges,
            post_fn=self._post_event,
            interval=config.heartbeat_interval)

    # -- addresses ---------------------------------------------------------

    @property
    def port(self) -> int:
        return self.daemon.port

    @property
    def address(self) -> str:
        return self.daemon.address

    # -- coordinator RPC ---------------------------------------------------

    def _post(self, path: str, document: Dict[str, object],
              timeout: float = 5.0) -> Dict[str, object]:
        request = urllib.request.Request(
            self.coordinator_url + path,
            data=json.dumps(document).encode("utf-8"), method="POST",
            headers={"Content-Type": "application/json"})
        with urllib.request.urlopen(request, timeout=timeout) as reply:
            return json.loads(reply.read().decode("utf-8"))

    def register(self, attempts: int = REGISTER_ATTEMPTS) -> bool:
        """Announce this node; retries cover a coordinator that is
        still binding its socket."""
        document = {"node_id": self.node_id, "url": self.address}
        for attempt in range(attempts):
            try:
                reply = self._post("/cluster/register", document)
            except Exception:
                if self._stop.wait(REGISTER_BACKOFF * (attempt + 1)):
                    return False
                continue
            self.registered = bool(reply.get("ok"))
            if self.registered:
                self.daemon.log_event({"event": "registered",
                                       "node_id": self.node_id,
                                       "coordinator":
                                           self.coordinator_url})
                return True
        return False

    def _heartbeat_loop(self) -> None:
        while not self._stop.wait(self.config.heartbeat_interval):
            try:
                reply = self._post("/cluster/heartbeat",
                                   {"node_id": self.node_id})
                if not reply.get("ok"):
                    # Coordinator restarted and lost the registry.
                    self.register(attempts=1)
            except Exception:
                continue  # next period retries; the node keeps serving

    # -- monitoring channel ------------------------------------------------

    def _gauges(self) -> Dict[str, object]:
        metrics = self.daemon.service.metrics_document()
        return {"queue": metrics.get("queue", {}),
                "counters": metrics.get("counters", {}),
                "cache": metrics.get("cache", {}),
                "tenants": metrics.get("tenants", {}),
                "request_latency": metrics.get("request_latency", {})}

    def _post_event(self, event: Dict[str, object]) -> None:
        self._post("/cluster/events",
                   {"node_id": self.node_id, "events": [event]})

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "WorkerNode":
        """Serve + join the cluster on background threads (tests)."""
        self.daemon.start()
        self._join_cluster()
        return self

    def serve_forever(self) -> None:
        """CLI path: join the cluster, then serve on this thread."""
        self._join_cluster()
        self.daemon.serve_forever()

    def _join_cluster(self) -> None:
        self.register()
        self.publisher.publish_once()
        self.publisher.start()
        self._heartbeat_thread = threading.Thread(
            target=self._heartbeat_loop, daemon=True,
            name="repro-cluster-heartbeat")
        self._heartbeat_thread.start()

    def close(self) -> None:
        self._stop.set()
        self.publisher.stop()
        if self._heartbeat_thread is not None:
            self._heartbeat_thread.join(2.0)
        self.daemon.close()
