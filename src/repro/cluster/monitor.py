"""The pub/sub monitoring channel between workers and coordinator.

Workers *publish* — each :class:`EventPublisher` thread periodically
snapshots its node's ``/metrics`` gauges (queue depth, in-flight count,
request counters, cache + store traffic, tenant stats) and POSTs an
event batch to the coordinator's ``/cluster/events`` endpoint.  The
coordinator *subscribes* — :class:`MonitoringChannel` folds each batch
into per-node latest-gauge state plus a bounded recent-event feed, and
the cluster ``/metrics``/``/dashboard`` render from that aggregate.
The channel is fire-and-forget on the worker side (a publish failure
is retried next period, never blocks evaluation) — the same shape as
agent frameworks that dedicate a monitoring exchange separate from the
work queues.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Deque, Dict, List, Optional

#: Recent events kept for the dashboard feed.
EVENT_BUFFER = 256


class MonitoringChannel:
    """Coordinator-side aggregate of worker-published events."""

    def __init__(self, buffer: int = EVENT_BUFFER):
        self._lock = threading.Lock()
        self._events: Deque[Dict[str, object]] = deque(maxlen=buffer)
        self._published = 0

    def publish(self, node_id: str,
                events: List[Dict[str, object]]) -> int:
        """Fold one batch from ``node_id``; returns events accepted."""
        now = time.time()
        accepted = 0
        with self._lock:
            for event in events:
                if not isinstance(event, dict):
                    continue
                record = dict(event)
                record["node_id"] = node_id
                record.setdefault("received_at", round(now, 3))
                self._events.append(record)
                accepted += 1
            self._published += accepted
        return accepted

    def recent(self, limit: int = 50) -> List[Dict[str, object]]:
        with self._lock:
            return list(self._events)[-limit:]

    @property
    def published_total(self) -> int:
        with self._lock:
            return self._published


class EventPublisher:
    """Worker-side publisher thread: gauges → coordinator, each period.

    ``snapshot_fn`` returns the node's gauge document; ``post_fn(doc)``
    delivers one batch (and may raise — failures count and the batch
    is dropped, the next period publishes fresh gauges anyway)."""

    def __init__(self, snapshot_fn, post_fn, interval: float = 1.0):
        self._snapshot_fn = snapshot_fn
        self._post_fn = post_fn
        self.interval = interval
        self.published = 0
        self.failures = 0
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    def start(self) -> "EventPublisher":
        self._thread = threading.Thread(target=self._run, daemon=True,
                                        name="repro-cluster-publisher")
        self._thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(2.0)

    def publish_once(self) -> bool:
        """One immediate publish (used at startup and in tests)."""
        try:
            gauges = self._snapshot_fn()
            self._post_fn({"kind": "gauges", "gauges": gauges,
                           "published_at": round(time.time(), 3)})
        except Exception:
            self.failures += 1
            return False
        self.published += 1
        return True

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            self.publish_once()
