"""repro: a reproduction of *Global Multi-Threaded Instruction Scheduling*
(GREMIO, MICRO 2007) — the full GMT-scheduling stack: mini-IR, PDG, the
GREMIO and DSWP partitioners, MTCG code generation, the COCO communication
optimizer (companion ASPLOS 2008 extension), and a dual-core CMP timing
model with a synchronization-array operand network.

Quickstart::

    from repro import evaluate_workload, get_workload
    ev = evaluate_workload(get_workload("ks"), technique="gremio",
                           n_threads=2, coco=True)
    print(ev.speedup, ev.communication_fraction)

See DESIGN.md for the paper-provenance note and the system inventory.
"""

from .pipeline import (ArtifactCache, Evaluation, MatrixCell,
                       Parallelization, TECHNIQUES, Telemetry,
                       configure_cache, evaluate_matrix, evaluate_workload,
                       get_cache, global_telemetry, make_partitioner,
                       normalize, parallelize, technique_config)
from .workloads import all_workloads, get_workload, workload_names

__version__ = "1.1.0"

__all__ = [
    "Evaluation", "Parallelization", "TECHNIQUES", "evaluate_workload",
    "make_partitioner", "normalize", "parallelize", "technique_config",
    "ArtifactCache", "MatrixCell", "Telemetry", "configure_cache",
    "evaluate_matrix", "get_cache", "global_telemetry",
    "all_workloads", "get_workload", "workload_names", "__version__",
]
