"""repro: a reproduction of *Global Multi-Threaded Instruction Scheduling*
(GREMIO, MICRO 2007) — the full GMT-scheduling stack: mini-IR, PDG, the
GREMIO and DSWP partitioners, MTCG code generation, the COCO communication
optimizer (companion ASPLOS 2008 extension), and a dual-core CMP timing
model with a synchronization-array operand network.

Quickstart::

    from repro import evaluate_workload, get_workload
    ev = evaluate_workload(get_workload("ks"), technique="gremio",
                           n_threads=2, coco=True)
    print(ev.speedup, ev.communication_fraction)

The stable programmatic surface is the :mod:`repro.api` facade (typed
``EvaluateRequest``/``EvaluateResult``, ``evaluate()``, and the classic
callables); ``python -m repro serve`` exposes the same facade over
JSON/HTTP.  See DESIGN.md for the paper-provenance note and the system
inventory.
"""

import warnings

from . import api
from .api import (API_SCHEMA_VERSION, TECHNIQUES, EvaluateRequest,
                  EvaluateResult, Evaluation, MatrixCell,
                  Parallelization, RequestValidationError, build_cells,
                  evaluate, evaluate_many, evaluate_matrix,
                  evaluate_workload, parallelize)
from .workloads import all_workloads, get_workload, workload_names

__version__ = "1.2.0"

__all__ = [
    "api", "API_SCHEMA_VERSION", "EvaluateRequest", "EvaluateResult",
    "RequestValidationError", "evaluate", "evaluate_many",
    "Evaluation", "Parallelization", "TECHNIQUES", "MatrixCell",
    "build_cells", "evaluate_matrix", "evaluate_workload", "parallelize",
    "all_workloads", "get_workload", "workload_names", "__version__",
]

#: Entry points that moved behind the :mod:`repro.api` facade in 1.2.
#: Importing them from the top-level package still works for one
#: release, with a DeprecationWarning naming the new home.
_DEPRECATED_TO_API = ("ArtifactCache", "Telemetry", "configure_cache",
                      "get_cache", "global_telemetry", "make_partitioner",
                      "normalize", "technique_config")


def __getattr__(name):
    if name in _DEPRECATED_TO_API:
        warnings.warn(
            "repro.%s is deprecated; import it from repro.api instead "
            "(shim scheduled for removal one release after 1.2)" % name,
            DeprecationWarning, stacklevel=2)
        return getattr(api, name)
    raise AttributeError("module %r has no attribute %r"
                         % (__name__, name))


def __dir__():
    return sorted(set(globals()) | set(_DEPRECATED_TO_API))
