"""Statistics helpers shared by the benchmark harnesses."""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Sequence, Tuple


def geomean(values: Iterable[float]) -> float:
    values = [v for v in values if v > 0]
    if not values:
        return 0.0
    return math.exp(sum(math.log(v) for v in values) / len(values))


def arithmetic_mean(values: Sequence[float]) -> float:
    return sum(values) / len(values) if values else 0.0


def relative_delta(current: float, baseline: float) -> float:
    """Signed relative change of ``current`` vs ``baseline`` (0.1 = 10%
    above baseline).  A zero baseline makes any nonzero current an
    infinite change."""
    if baseline == 0:
        return 0.0 if current == 0 else math.inf
    return (current - baseline) / abs(baseline)


def within_band(current: float, baseline: float,
                tolerance: float, one_sided: bool = False) -> bool:
    """Whether ``current`` stays inside the relative tolerance band
    around ``baseline``.  ``tolerance=0`` demands exact equality; with
    ``one_sided`` only *increases* beyond the band fail (wall-time
    metrics: getting faster is never a regression)."""
    delta = relative_delta(current, baseline)
    if one_sided and delta <= 0:
        return True
    return abs(delta) <= tolerance


def relative_communication(coco_evaluation, base_evaluation) -> float:
    """Dynamic communication after COCO relative to baseline MTCG, in %
    (the metric of the companion paper's Figure 7; 100% = unchanged)."""
    base = base_evaluation.communication_instructions
    if base == 0:
        return 100.0
    return 100.0 * coco_evaluation.communication_instructions / base


def queue_traffic(program, result) -> List[Tuple[int, str, int]]:
    """Per-channel message counts from a simulation result: rows of
    (physical queue id, channel description, messages).  Works with both
    the functional (`MTRunResult`) and timed (`TimedResult`) results —
    anything carrying a ``queues`` object with ``pushes_per_queue``."""
    queues = result.queues
    if queues is None:
        return []
    rows: List[Tuple[int, str, int]] = []
    for channel in program.channels:
        description = "%s %s T%d->T%d" % (
            channel.kind.value, channel.register or "(sync)",
            channel.source_thread, channel.target_thread)
        messages = (queues.pushes_per_queue[channel.queue]
                    if channel.queue < len(queues.pushes_per_queue) else 0)
        rows.append((channel.queue, description, messages))
    return rows


def overhead_breakdown(program, mt_result) -> Dict[str, float]:
    """Attribute every dynamically executed instruction of an MT run to one
    of four classes (percentages):

    * ``computation`` — the original program's work;
    * ``communication`` — produce/consume (data and sync);
    * ``replicated_control`` — duplicated branches implementing cross-
      thread control dependences;
    * ``glue`` — jumps/exits (present in single-threaded code too, but
      MTCG adds retargeting trampolines and per-thread entry/exit).

    Requires ``mt_result`` from ``run_mt_program(...,
    count_per_instruction=True)``.
    """
    from .ir.instructions import Opcode
    counts = mt_result.instruction_counts
    if counts is None:
        raise ValueError("run with count_per_instruction=True")
    by_iid = {}
    for thread in program.threads:
        for instruction in thread.instructions():
            by_iid[instruction.iid] = instruction
    classes = {"computation": 0, "communication": 0,
               "replicated_control": 0, "glue": 0}
    for iid, count in counts.items():
        instruction = by_iid.get(iid)
        if instruction is None:
            continue
        if instruction.is_communication():
            classes["communication"] += count
        elif instruction.op is Opcode.BR and instruction.origin is not None:
            classes["replicated_control"] += count
        elif instruction.op in (Opcode.JMP, Opcode.EXIT):
            classes["glue"] += count
        else:
            classes["computation"] += count
    total = sum(classes.values())
    if total == 0:
        return {key: 0.0 for key in classes}
    return {key: 100.0 * value / total for key, value in classes.items()}


def breakdown_rows(evaluations) -> List[Tuple[str, float, float]]:
    """Per-benchmark (name, computation %, communication %) rows from a
    list of evaluations (the Figure 1 breakdown)."""
    rows = []
    for evaluation in evaluations:
        total = evaluation.mt_result.dynamic_instructions
        comm = evaluation.mt_result.communication_instructions
        comp = total - comm
        if total == 0:
            rows.append((evaluation.workload.name, 100.0, 0.0))
        else:
            rows.append((evaluation.workload.name,
                         100.0 * comp / total, 100.0 * comm / total))
    return rows
