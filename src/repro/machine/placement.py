"""Thread placement: mapping thread ids onto the topology's cores.

The partitioners and MTCG talk about *threads*; the timing simulator
talks about *cores*.  This module is the one place the two meet: a
:class:`Placement` assigns each generated thread a core id of the
machine's :class:`~repro.machine.topology.Topology`, and everything
downstream (per-cluster synchronization-array arbitration, inter-cluster
crossing penalties, L3 domains, trace track grouping) keys off the
placed cores.

Two placers are registered:

* ``identity`` — thread ``i`` on core ``i`` (the default; on the flat
  dual-core machine this is the only sensible choice and reproduces the
  legacy behaviour exactly);
* ``affinity`` — co-locates heavily-communicating thread pairs in the
  same cluster, using the profile-weighted PDG arcs that cross the
  partition as the affinity signal.  It falls back to the identity
  mapping unless its greedy placement strictly lowers the estimated
  inter-cluster traffic, so it can never *estimate* worse than identity
  (and degenerates to identity on any single-cluster topology).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from .topology import Topology, TopologyError

#: Placer names ``--placer`` / ``EvaluateRequest.placer`` accept.
PLACERS = ("identity", "affinity")


class PlacementError(ValueError):
    """The placement request cannot be satisfied."""


@dataclass(frozen=True)
class Placement:
    """An assignment of thread ids ``0..n-1`` to distinct core ids."""

    cores: Tuple[int, ...]        # thread id -> core id
    placer: str = "identity"
    topology: str = "flat"

    @property
    def n_threads(self) -> int:
        return len(self.cores)

    def core_of(self, thread: int) -> int:
        return self.cores[thread]

    def signature(self) -> str:
        """Deterministic identity for fingerprinting."""
        return "%s:%s:%r" % (self.placer, self.topology, self.cores)

    def __repr__(self) -> str:  # pragma: no cover
        return "<Placement %s threads->cores %r (%s)>" % (
            self.placer, self.cores, self.topology)


def _validated(cores: Tuple[int, ...], topology: Topology,
               placer: str) -> Placement:
    if len(set(cores)) != len(cores):
        raise PlacementError("placement maps two threads to one core: %r"
                             % (cores,))
    for core in cores:
        if not 0 <= core < topology.n_cores:
            raise PlacementError(
                "placement targets core %d outside topology %r (%d "
                "cores)" % (core, topology.name, topology.n_cores))
    return Placement(cores=cores, placer=placer, topology=topology.name)


def identity_placement(n_threads: int, topology: Topology) -> Placement:
    """Thread ``i`` on core ``i``."""
    if n_threads > topology.n_cores:
        raise PlacementError(
            "%d threads exceed topology %r (%d cores)"
            % (n_threads, topology.name, topology.n_cores))
    return _validated(tuple(range(n_threads)), topology, "identity")


def thread_affinity(pdg, partition, profile) -> Dict[Tuple[int, int], float]:
    """Profile-weighted communication affinity between thread pairs: for
    every PDG arc crossing the partition, the source block's execution
    count accrues to the (unordered) thread pair."""
    block_of = partition.function.block_of()
    weights: Dict[Tuple[int, int], float] = {}
    for arc in pdg.arcs:
        try:
            source = partition.thread_of(arc.source)
            target = partition.thread_of(arc.target)
        except KeyError:  # pragma: no cover - PDG/partition mismatch
            continue
        if source == target:
            continue
        frequency = max(profile.block_weight(block_of[arc.source]), 0.0)
        pair = (source, target) if source < target else (target, source)
        weights[pair] = weights.get(pair, 0.0) + frequency
    return weights


def _crossing_cost(cores: Tuple[int, ...], topology: Topology,
                   weights: Dict[Tuple[int, int], float]) -> float:
    return sum(weight * topology.crossing(cores[a], cores[b])
               for (a, b), weight in weights.items())


def affinity_placement(n_threads: int, topology: Topology,
                       pdg, partition, profile) -> Placement:
    """Greedy communication-affinity placement: threads in decreasing
    total-affinity order, each onto the free core whose cluster holds
    the most already-placed affinity (deterministic tie-break: lowest
    core id).  Keeps the identity mapping unless the greedy result
    strictly lowers the estimated inter-cluster traffic."""
    identity = identity_placement(n_threads, topology)
    if topology.n_clusters == 1 or n_threads < 2:
        return Placement(identity.cores, "affinity", topology.name)

    weights = thread_affinity(pdg, partition, profile)
    totals = [0.0] * n_threads
    for (a, b), weight in weights.items():
        if a < n_threads and b < n_threads:
            totals[a] += weight
            totals[b] += weight

    order = sorted(range(n_threads), key=lambda t: (-totals[t], t))
    free = set(range(topology.n_cores))
    chosen: Dict[int, int] = {}
    for thread in order:
        best_core, best_score = -1, float("-inf")
        for core in sorted(free):
            cluster = topology.cluster_of(core)
            score = 0.0
            for other, placed_core in chosen.items():
                pair = ((thread, other) if thread < other
                        else (other, thread))
                weight = weights.get(pair, 0.0)
                if topology.cluster_of(placed_core) == cluster:
                    score += weight
            if score > best_score:
                best_core, best_score = core, score
        chosen[thread] = best_core
        free.remove(best_core)

    greedy = tuple(chosen[thread] for thread in range(n_threads))
    if (_crossing_cost(greedy, topology, weights)
            < _crossing_cost(identity.cores, topology, weights)):
        return _validated(greedy, topology, "affinity")
    return Placement(identity.cores, "affinity", topology.name)


def make_placement(placer: str, n_threads: int, topology: Topology,
                   pdg=None, partition=None,
                   profile=None) -> Placement:
    """Build a placement with the named placer.  ``affinity`` needs the
    PDG, the partition, and the profile; ``identity`` ignores them."""
    if placer == "identity":
        return identity_placement(n_threads, topology)
    if placer == "affinity":
        if pdg is None or partition is None or profile is None:
            raise PlacementError(
                "affinity placement needs pdg, partition, and profile")
        return affinity_placement(n_threads, topology, pdg, partition,
                                  profile)
    raise PlacementError("unknown placer %r (use one of %s)"
                         % (placer, ", ".join(PLACERS)))


__all__ = [
    "PLACERS", "Placement", "PlacementError", "TopologyError",
    "identity_placement", "affinity_placement", "thread_affinity",
    "make_placement",
]
