"""The CMP machine model: topology, placement, functional MT simulation,
and the timing model."""

from .cache import CacheLevel, MemoryHierarchy
from .config import DEFAULT_CONFIG, CacheConfig, MachineConfig, config_table
from .functional import (DeadlockError, FifoQueues, MTExecutionLimitExceeded,
                         MTRunResult, run_mt_program)
from .placement import (PLACERS, Placement, PlacementError,
                        affinity_placement, identity_placement,
                        make_placement, thread_affinity)
from .timing import (TimedResult, queue_crossing_penalties, simulate_program,
                     simulate_single, simulate_threads)
from .topology import (TOPOLOGIES, Topology, TopologyError, get_topology,
                       topology_names)

__all__ = [
    "CacheLevel", "MemoryHierarchy", "DEFAULT_CONFIG", "CacheConfig",
    "MachineConfig", "config_table", "DeadlockError", "FifoQueues",
    "MTExecutionLimitExceeded", "MTRunResult", "run_mt_program",
    "TimedResult", "simulate_program", "simulate_single", "simulate_threads",
    "queue_crossing_penalties",
    "TOPOLOGIES", "Topology", "TopologyError", "get_topology",
    "topology_names",
    "PLACERS", "Placement", "PlacementError", "make_placement",
    "identity_placement", "affinity_placement", "thread_affinity",
]
