"""The CMP machine model: functional MT simulation and the timing model."""

from .cache import CacheLevel, MemoryHierarchy
from .config import DEFAULT_CONFIG, CacheConfig, MachineConfig, config_table
from .functional import (DeadlockError, FifoQueues, MTExecutionLimitExceeded,
                         MTRunResult, run_mt_program)
from .timing import (TimedResult, simulate_program, simulate_single,
                     simulate_threads)

__all__ = [
    "CacheLevel", "MemoryHierarchy", "DEFAULT_CONFIG", "CacheConfig",
    "MachineConfig", "config_table", "DeadlockError", "FifoQueues",
    "MTExecutionLimitExceeded", "MTRunResult", "run_mt_program",
    "TimedResult", "simulate_program", "simulate_single", "simulate_threads",
]
