"""Batched-dispatch fast backend of the timing simulator.

This module re-implements :func:`repro.machine.timing.simulate_threads`
as a *fused* functional+timing interpreter over precompiled dispatch
records.  The reference simulator pays, per dynamic instruction, for a
``ThreadContext.step()`` (operand list allocation, ``StepResult``
allocation, an opcode ``is``-chain) plus a second dispatch in
``_time_plain_instruction`` (a ``SIGNATURES`` lookup per ``kind`` read,
``Counter`` port accounting, several method calls).  The fast backend
compiles each thread's CFG once into flat per-block record tuples —
integer op-class codes, pre-resolved branch targets, pre-computed port
indices/limits/latencies, pre-bound value-semantics callables — and runs
one loop that executes and times each instruction directly against
array-backed core state.

Equivalence contract: the results are **bit-identical** to the reference
backend — cycles, per-core finish times, stall attribution, cache and
queue statistics, memory, live-outs, even the ``int`` vs ``float``
types the reference's mixed arithmetic produces (cached artifacts are
shared across backends, so object equality must survive pickling).
Every timing expression below mirrors the corresponding line of
``timing.py``; when editing one, edit both.  The differential harness
(:mod:`repro.check.differential_backend`,
``tests/test_backend_equivalence.py``) locks this down.

Shared state (the per-cluster :class:`SAPortSchedule` bookings, the
:class:`TimedQueues` timestamps, the :class:`MemoryHierarchy` LRU sets)
reuses the reference classes outright: their behaviour is
interleaving-sensitive, so sharing the implementation removes a whole
class of divergence.

Tracing is *not* reimplemented: with a tracer attached the fast entry
points delegate to the reference simulator (documented in
``docs/performance.md``), so traced runs cost reference speed but stay
exactly reconciled.
"""

from __future__ import annotations

from collections import Counter
from typing import List, Mapping, Optional, Sequence

from ..interp.context import _BINARY, _UNARY, TrapError
from ..interp.state import MemoryError_, bind_params, make_memory
from ..ir.cfg import Function
from ..ir.instructions import COMM_OPCODES, OpKind, Opcode
from ..mtcg.program import MTProgram
from .cache import MemoryHierarchy
from .config import DEFAULT_CONFIG, MachineConfig
from .functional import DeadlockError, MTExecutionLimitExceeded
from .timing import (SAPortSchedule, TimedQueues, TimedResult,
                     queue_crossing_penalties, simulate_threads)

# Op-class codes of the compiled dispatch records.  Ordered roughly by
# dynamic frequency so the dispatch chain tests the hot classes first.
_ALU_RR = 0        # binary op, two register sources
_ALU_RI = 1        # binary op, register + immediate
_ALU_UN = 2        # unary op
_MOVI = 3
_LOAD = 4
_STORE = 5
_BR = 6
_JMP = 7
_EXIT = 8
_NOP = 9
_PRODUCE = 10
_PRODUCE_SYNC = 11
_CONSUME = 12
_CONSUME_SYNC = 13

#: Issue-port classes, by index: alu, memory, fp, branch.
_PORT_ALU, _PORT_MEM, _PORT_FP, _PORT_BR = 0, 1, 2, 3


def _fdiv(a, b):
    """FDIV value semantics (the reference checks before dividing)."""
    if float(b) == 0.0:
        raise TrapError("float division by zero")
    return float(a) / float(b)


#: Sentinel filling the slots of never-written registers.  The register
#: file is a flat list indexed by the compile-time register table, so
#: "undefined" must be a value; reading it traps exactly where the
#: reference's ``KeyError`` would.
_UNDEF = object()


def _trap_undef(register: str, function_name: str):
    raise TrapError("read of undefined register %r in %s"
                    % (register, function_name))


class _FastCore:
    """Array-backed in-order issue state of one core.

    Field-for-field mirror of :class:`repro.machine.timing.CoreTiming`
    minus the trace-only bookkeeping (the fast backend never traces);
    ``port_use`` is a fixed 4-slot list indexed by port class instead of
    a ``Counter`` keyed by port name.
    """

    __slots__ = ("core_id", "sa", "cycle", "issued_in_cycle", "port_use",
                 "min_issue", "mem_fence", "last_mem_complete",
                 "finish", "branch_counters", "mispredictions",
                 "backpressure_cycles", "operand_wait_cycles",
                 "sa_port_delays")

    def __init__(self, core_id: int, sa: SAPortSchedule):
        self.core_id = core_id
        self.sa = sa
        self.cycle = 0
        self.issued_in_cycle = 0
        self.port_use = [0, 0, 0, 0]
        self.min_issue = 0
        self.mem_fence = 0.0
        self.last_mem_complete = 0.0
        self.finish = 0.0
        self.branch_counters = {}
        self.mispredictions = 0
        self.backpressure_cycles = 0.0
        self.operand_wait_cycles = 0.0
        self.sa_port_delays = 0


def _issue(core, earliest, pidx, limit, issue_width):
    """``CoreTiming.find_issue_slot(earliest, port, uses_sa=False)``."""
    mi = core.min_issue
    if earliest > mi:
        t = int(earliest)
        if earliest > t:
            t += 1
    else:
        t = mi
    pu = core.port_use
    while True:
        if t > core.cycle:
            core.cycle = t
            core.issued_in_cycle = 0
            pu[0] = pu[1] = pu[2] = pu[3] = 0
        if core.issued_in_cycle < issue_width and pu[pidx] < limit:
            core.issued_in_cycle += 1
            pu[pidx] += 1
            core.min_issue = t
            tf = t + 1.0
            if tf > core.finish:
                core.finish = tf
            return t
        t += 1


def _issue_sa(core, earliest, limit, issue_width):
    """``find_issue_slot(..., "memory", uses_sa=True)``: memory port plus
    a synchronization-array port of the core's cluster."""
    mi = core.min_issue
    if earliest > mi:
        t = int(earliest)
        if earliest > t:
            t += 1
    else:
        t = mi
    pu = core.port_use
    sa = core.sa
    booked = sa.booked
    ports = sa.ports
    while True:
        if t > core.cycle:
            core.cycle = t
            core.issued_in_cycle = 0
            pu[0] = pu[1] = pu[2] = pu[3] = 0
        if core.issued_in_cycle < issue_width and pu[_PORT_MEM] < limit:
            free = t
            while booked.get(free, 0) >= ports:
                free += 1
            if free != t:
                core.sa_port_delays += 1
                t = free
                continue
            booked[t] = booked.get(t, 0) + 1
            core.issued_in_cycle += 1
            pu[_PORT_MEM] += 1
            core.min_issue = t
            tf = t + 1.0
            if tf > core.finish:
                core.finish = tf
            return t
        t += 1


def compile_function(function: Function, config: MachineConfig):
    """Compile one thread CFG into per-block dispatch records.

    Returns ``(blocks, meta, reg_index, reg_names)``: ``blocks[i]`` is
    the record list of the i-th basic block (branch targets pre-resolved
    to block indices), ``meta[ridx]`` the source :class:`Instruction` of
    record ``ridx`` (used for end-of-run opcode accounting and error
    messages), and ``reg_index``/``reg_names`` the register table —
    records refer to registers by index into a flat list-backed register
    file (params first, then first-use order), which replaces every
    per-step dict probe of the reference with a list subscript.  The
    compile is linear in static code size and performs no dynamic work.
    """
    _ = function.entry  # same ValueError as ThreadContext on empty CFGs
    label_index = {block.label: i for i, block in enumerate(function.blocks)}
    alu_limit = config.alu_ports
    mem_limit = config.memory_ports
    fp_limit = config.fp_ports
    br_limit = config.branch_ports
    reg_index: dict = {}
    reg_names: list = []

    def reg(name):
        i = reg_index.get(name)
        if i is None:
            i = len(reg_names)
            reg_index[name] = i
            reg_names.append(name)
        return i

    for param in function.params:
        reg(param)
    meta = []
    blocks = []
    for block in function.blocks:
        records = []
        for instr in block.instructions:
            ridx = len(meta)
            meta.append(instr)
            op = instr.op
            if op is Opcode.LOAD:
                rec = (_LOAD, ridx, instr, reg(instr.dest),
                       reg(instr.srcs[0]), instr.imm or 0, mem_limit)
            elif op is Opcode.STORE:
                rec = (_STORE, ridx, instr, reg(instr.srcs[0]),
                       reg(instr.srcs[1]), instr.imm or 0, mem_limit)
            elif op is Opcode.BR:
                rec = (_BR, ridx, instr, reg(instr.srcs[0]), instr.iid,
                       label_index[instr.labels[0]],
                       label_index[instr.labels[1]], br_limit)
            elif op is Opcode.JMP:
                rec = (_JMP, ridx, instr, label_index[instr.labels[0]],
                       br_limit)
            elif op is Opcode.EXIT:
                rec = (_EXIT, ridx, instr, br_limit)
            elif op is Opcode.MOVI:
                rec = (_MOVI, ridx, instr, reg(instr.dest), instr.imm,
                       alu_limit, config.latency_of(instr))
            elif op is Opcode.NOP:
                rec = (_NOP, ridx, instr, alu_limit)
            elif op is Opcode.PRODUCE:
                rec = (_PRODUCE, ridx, instr, reg(instr.srcs[0]),
                       instr.queue, mem_limit)
            elif op is Opcode.PRODUCE_SYNC:
                rec = (_PRODUCE_SYNC, ridx, instr, instr.queue, mem_limit)
            elif op is Opcode.CONSUME:
                rec = (_CONSUME, ridx, instr, reg(instr.dest),
                       instr.queue, mem_limit)
            elif op is Opcode.CONSUME_SYNC:
                rec = (_CONSUME_SYNC, ridx, instr, instr.queue, mem_limit)
            else:
                if op is Opcode.FDIV:
                    fn = _fdiv
                else:
                    fn = _BINARY.get(op) or _UNARY.get(op)
                    if fn is None:  # pragma: no cover - all opcodes covered
                        raise TrapError("unimplemented opcode %s" % op.value)
                if instr.kind is OpKind.FP:
                    pidx, limit = _PORT_FP, fp_limit
                else:
                    pidx, limit = _PORT_ALU, alu_limit
                latency = config.latency_of(instr)
                srcs = instr.srcs
                if len(srcs) == 2:
                    rec = (_ALU_RR, ridx, instr, fn, reg(instr.dest),
                           reg(srcs[0]), reg(srcs[1]), pidx, limit, latency)
                elif instr.imm is not None:
                    rec = (_ALU_RI, ridx, instr, fn, reg(instr.dest),
                           reg(srcs[0]), instr.imm, pidx, limit, latency)
                else:
                    rec = (_ALU_UN, ridx, instr, fn, reg(instr.dest),
                           reg(srcs[0]), pidx, limit, latency)
            records.append(rec)
        blocks.append(records)
    return blocks, meta, reg_index, reg_names


def simulate_threads_fast(functions: Sequence[Function], exit_thread: int,
                          memory_owner: Function,
                          args: Optional[Mapping[str, object]] = None,
                          initial_memory: Optional[
                              Mapping[str, object]] = None,
                          config: MachineConfig = DEFAULT_CONFIG,
                          n_queues: int = 0,
                          max_steps: int = 200_000_000,
                          tracer=None,
                          placement: Optional[Sequence[int]] = None,
                          queue_crossing: Optional[Sequence[int]] = None
                          ) -> TimedResult:
    """Drop-in, bit-identical replacement for
    :func:`repro.machine.timing.simulate_threads`.

    With a ``tracer`` the reference implementation runs instead: trace
    instrumentation is deeply interleaved with the reference loop and
    duplicating it would double the equivalence surface for no timed-run
    benefit (traced runs are diagnostics, not sweeps).
    """
    if tracer is not None:
        return simulate_threads(functions, exit_thread, memory_owner, args,
                                initial_memory, config, n_queues=n_queues,
                                max_steps=max_steps, tracer=tracer,
                                placement=placement,
                                queue_crossing=queue_crossing)

    memory = make_memory(memory_owner, initial_memory)
    queues = TimedQueues(n_queues, config.sa_queue_size) if n_queues else None
    hierarchy = MemoryHierarchy(config)
    topo = config.resolve_topology()
    sa_latency = topo.sa_access_latency
    cluster_ports = [SAPortSchedule(topo.sa_ports)
                     for _ in range(topo.n_clusters)]
    if placement is None:
        placement = tuple(range(len(functions)))
    if len(placement) < len(functions):
        raise ValueError("placement covers %d threads, program has %d"
                         % (len(placement), len(functions)))

    issue_width = config.issue_width
    predictor = config.branch_predictor
    taken_penalty = config.taken_branch_penalty
    mispredict_penalty = config.mispredict_penalty
    # 0 = static, 1 = bimodal, 2 = perfect (matches branch_redirect).
    pred_mode = 2 if predictor == "perfect" else (
        0 if predictor == "static" else 1)

    n = len(functions)
    thread_regs: List[list] = []    # flat register files (see compile)
    thread_rr: List[list] = []      # parallel register-ready times
    thread_names: List[list] = []   # register index -> name (for traps)
    thread_index: List[dict] = []   # register name -> index
    cores: List[_FastCore] = []
    thread_blocks = []          # per thread: compiled block record lists
    thread_meta = []            # per thread: record index -> Instruction
    for index, function in enumerate(functions):
        params = bind_params(function, dict(args) if args else {})
        # Compile (touching function.entry) before validating the core id:
        # the reference builds the ThreadContext first, so an empty CFG
        # must win over a bad placement.
        blocks, meta, reg_index, reg_names = compile_function(function,
                                                              config)
        regs = [_UNDEF] * len(reg_names)
        for name, value in params.items():
            regs[reg_index[name]] = value
        thread_regs.append(regs)
        thread_rr.append([0.0] * len(reg_names))
        thread_names.append(reg_names)
        thread_index.append(reg_index)
        thread_blocks.append(blocks)
        thread_meta.append(meta)
        core_id = placement[index]
        if not 0 <= core_id < topo.n_cores:
            raise ValueError("thread %d placed on core %d outside "
                             "topology %r (%d cores)"
                             % (index, core_id, topo.name, topo.n_cores))
        cores.append(_FastCore(core_id,
                               cluster_ports[topo.cluster_of(core_id)]))

    mem_words = memory.words
    mem_size = memory.size
    access = hierarchy.access
    qcap = queues.capacity if queues is not None else 0

    # Inline L1 read-hit path (the common case): the loop below checks
    # the per-core L1 tag store directly — same hit counting and LRU
    # update as CacheLevel.lookup — and only falls back to the full
    # hierarchy walk on a miss.
    word_bytes = config.word_bytes
    l1_line_bytes = config.l1d.line_bytes
    l1_hit_latency = config.l1d.hit_latency
    l1_nsets = hierarchy.l1[0].n_sets
    l1_levels = [hierarchy.l1[core.core_id] for core in cores]

    # Per-thread program counters over the compiled records.
    cur_recs = [blocks[0] for blocks in thread_blocks]
    cur_idx = [0] * n
    counts = [[0] * len(meta) for meta in thread_meta]
    live = [True] * n
    total_steps = 0
    prune_threshold = SAPortSchedule.PRUNE_THRESHOLD

    while any(live):
        if any(len(schedule.booked) > prune_threshold
               for schedule in cluster_ports):
            watermark = min(cores[i].min_issue
                            for i in range(n) if live[i])
            for schedule in cluster_ports:
                schedule.prune(watermark)
        progressed = False
        for index in range(n):
            if not live[index]:
                continue
            core = cores[index]
            cid = core.core_id
            l1 = l1_levels[index]
            regs = thread_regs[index]
            rr = thread_rr[index]
            names = thread_names[index]
            fname = functions[index].name
            ccounts = counts[index]
            recs = cur_recs[index]
            pos = cur_idx[index]
            executed = 0
            # Local mirrors of the core's issue state: the inlined
            # find-issue-slot logic below (the body of ``_issue``,
            # repeated per op class) runs entirely on locals, written
            # back once per burst.  ``_issue_sa`` still runs out of line
            # — its call sites sync the mirrors around the call.
            c_cycle = core.cycle
            c_issued = core.issued_in_cycle
            c_min_issue = core.min_issue
            c_finish = core.finish
            c_mem_fence = core.mem_fence
            c_last_mem = core.last_mem_complete
            pu = core.port_use
            # Budget: a burst of instructions per thread per visit, as in
            # the reference loop (keeps queue timestamps causal).
            for _ in range(64):
                rec = recs[pos]
                code = rec[0]
                if code == _ALU_RR:
                    (_c, ridx, _i, fn, dest, s0, s1, pidx, limit,
                     latency) = rec
                    v0 = regs[s0]
                    if v0 is _UNDEF:
                        _trap_undef(names[s0], fname)
                    v1 = regs[s1]
                    if v1 is _UNDEF:
                        _trap_undef(names[s1], fname)
                    regs[dest] = fn(v0, v1)
                    e = rr[s0]
                    e2 = rr[s1]
                    if e2 > e:
                        e = e2
                    if e > c_min_issue:
                        t = int(e)
                        if e > t:
                            t += 1
                    else:
                        t = c_min_issue
                    while True:
                        if t > c_cycle:
                            c_cycle = t
                            c_issued = 0
                            pu[0] = pu[1] = pu[2] = pu[3] = 0
                        if c_issued < issue_width and pu[pidx] < limit:
                            c_issued += 1
                            pu[pidx] += 1
                            c_min_issue = t
                            tf = t + 1.0
                            if tf > c_finish:
                                c_finish = tf
                            break
                        t += 1
                    fin = t + latency
                    rr[dest] = fin
                    if fin > c_finish:
                        c_finish = fin
                    pos += 1
                elif code == _ALU_RI:
                    (_c, ridx, _i, fn, dest, s0, imm, pidx, limit,
                     latency) = rec
                    v0 = regs[s0]
                    if v0 is _UNDEF:
                        _trap_undef(names[s0], fname)
                    regs[dest] = fn(v0, imm)
                    e = rr[s0]
                    if e > c_min_issue:
                        t = int(e)
                        if e > t:
                            t += 1
                    else:
                        t = c_min_issue
                    while True:
                        if t > c_cycle:
                            c_cycle = t
                            c_issued = 0
                            pu[0] = pu[1] = pu[2] = pu[3] = 0
                        if c_issued < issue_width and pu[pidx] < limit:
                            c_issued += 1
                            pu[pidx] += 1
                            c_min_issue = t
                            tf = t + 1.0
                            if tf > c_finish:
                                c_finish = tf
                            break
                        t += 1
                    fin = t + latency
                    rr[dest] = fin
                    if fin > c_finish:
                        c_finish = fin
                    pos += 1
                elif code == _ALU_UN:
                    (_c, ridx, _i, fn, dest, s0, pidx, limit,
                     latency) = rec
                    v0 = regs[s0]
                    if v0 is _UNDEF:
                        _trap_undef(names[s0], fname)
                    regs[dest] = fn(v0)
                    e = rr[s0]
                    if e > c_min_issue:
                        t = int(e)
                        if e > t:
                            t += 1
                    else:
                        t = c_min_issue
                    while True:
                        if t > c_cycle:
                            c_cycle = t
                            c_issued = 0
                            pu[0] = pu[1] = pu[2] = pu[3] = 0
                        if c_issued < issue_width and pu[pidx] < limit:
                            c_issued += 1
                            pu[pidx] += 1
                            c_min_issue = t
                            tf = t + 1.0
                            if tf > c_finish:
                                c_finish = tf
                            break
                        t += 1
                    fin = t + latency
                    rr[dest] = fin
                    if fin > c_finish:
                        c_finish = fin
                    pos += 1
                elif code == _MOVI:
                    _c, ridx, _i, dest, imm, limit, latency = rec
                    regs[dest] = imm
                    t = c_min_issue
                    while True:
                        if t > c_cycle:
                            c_cycle = t
                            c_issued = 0
                            pu[0] = pu[1] = pu[2] = pu[3] = 0
                        if c_issued < issue_width and pu[0] < limit:
                            c_issued += 1
                            pu[0] += 1
                            c_min_issue = t
                            tf = t + 1.0
                            if tf > c_finish:
                                c_finish = tf
                            break
                        t += 1
                    fin = t + latency
                    rr[dest] = fin
                    if fin > c_finish:
                        c_finish = fin
                    pos += 1
                elif code == _LOAD:
                    _c, ridx, _i, dest, s0, offset, limit = rec
                    base = regs[s0]
                    if base is _UNDEF:
                        _trap_undef(names[s0], fname)
                    address = base + offset
                    if not isinstance(address, int):
                        raise TrapError("non-integer address %r"
                                        % (address,))
                    if 0 <= address < mem_size:
                        regs[dest] = mem_words[address]
                    else:
                        raise MemoryError_(
                            "load from address %r (size %d)"
                            % (address, mem_size))
                    e = rr[s0]
                    if c_mem_fence > e:
                        e = c_mem_fence
                    if e > c_min_issue:
                        t = int(e)
                        if e > t:
                            t += 1
                    else:
                        t = c_min_issue
                    while True:
                        if t > c_cycle:
                            c_cycle = t
                            c_issued = 0
                            pu[0] = pu[1] = pu[2] = pu[3] = 0
                        if c_issued < issue_width and pu[1] < limit:
                            c_issued += 1
                            pu[1] += 1
                            c_min_issue = t
                            tf = t + 1.0
                            if tf > c_finish:
                                c_finish = tf
                            break
                        t += 1
                    line = address * word_bytes // l1_line_bytes
                    ways = l1.sets.get(line % l1_nsets)
                    if ways is not None and line // l1_nsets in ways:
                        ways.move_to_end(line // l1_nsets)
                        l1.hits += 1
                        hierarchy.last_level = "l1"
                        latency = l1_hit_latency
                    else:
                        latency = access(cid, address, False)
                    fin = t + latency
                    rr[dest] = fin
                    if fin > c_last_mem:
                        c_last_mem = fin
                    if fin > c_finish:
                        c_finish = fin
                    pos += 1
                elif code == _STORE:
                    _c, ridx, _i, s0, s1, offset, limit = rec
                    base = regs[s0]
                    if base is _UNDEF:
                        _trap_undef(names[s0], fname)
                    address = base + offset
                    if not isinstance(address, int):
                        raise TrapError("non-integer address %r"
                                        % (address,))
                    value = regs[s1]
                    if value is _UNDEF:
                        _trap_undef(names[s1], fname)
                    if 0 <= address < mem_size:
                        mem_words[address] = value
                    else:
                        raise MemoryError_(
                            "store to address %r (size %d)"
                            % (address, mem_size))
                    e = rr[s0]
                    e2 = rr[s1]
                    if e2 > e:
                        e = e2
                    if c_mem_fence > e:
                        e = c_mem_fence
                    if e > c_min_issue:
                        t = int(e)
                        if e > t:
                            t += 1
                    else:
                        t = c_min_issue
                    while True:
                        if t > c_cycle:
                            c_cycle = t
                            c_issued = 0
                            pu[0] = pu[1] = pu[2] = pu[3] = 0
                        if c_issued < issue_width and pu[1] < limit:
                            c_issued += 1
                            pu[1] += 1
                            c_min_issue = t
                            tf = t + 1.0
                            if tf > c_finish:
                                c_finish = tf
                            break
                        t += 1
                    access(cid, address, True)
                    tf = float(t + 1)
                    if tf > c_last_mem:
                        c_last_mem = tf
                    ti = t + 1
                    if ti > c_finish:
                        c_finish = ti
                    pos += 1
                elif code == _BR:
                    _c, ridx, _i, s0, iid, tk, nt, limit = rec
                    v0 = regs[s0]
                    if v0 is _UNDEF:
                        _trap_undef(names[s0], fname)
                    taken = bool(v0)
                    e = rr[s0]
                    if e > c_min_issue:
                        t = int(e)
                        if e > t:
                            t += 1
                    else:
                        t = c_min_issue
                    while True:
                        if t > c_cycle:
                            c_cycle = t
                            c_issued = 0
                            pu[0] = pu[1] = pu[2] = pu[3] = 0
                        if c_issued < issue_width and pu[3] < limit:
                            c_issued += 1
                            pu[3] += 1
                            c_min_issue = t
                            tf = t + 1.0
                            if tf > c_finish:
                                c_finish = tf
                            break
                        t += 1
                    if pred_mode == 0:
                        penalty = taken_penalty if taken else 0
                    elif pred_mode == 2:
                        penalty = 0
                    else:
                        bc = core.branch_counters
                        counter = bc.get(iid, 2)
                        if taken:
                            bc[iid] = counter + 1 if counter < 3 else 3
                        else:
                            bc[iid] = counter - 1 if counter > 0 else 0
                        if (counter >= 2) == taken:
                            penalty = 0
                        else:
                            core.mispredictions += 1
                            penalty = mispredict_penalty
                    if penalty:
                        c_min_issue = t + 1 + penalty
                    ti = t + 1
                    if ti > c_finish:
                        c_finish = ti
                    recs = thread_blocks[index][tk if taken else nt]
                    pos = 0
                elif code == _JMP:
                    _c, ridx, _i, target, limit = rec
                    t = c_min_issue
                    while True:
                        if t > c_cycle:
                            c_cycle = t
                            c_issued = 0
                            pu[0] = pu[1] = pu[2] = pu[3] = 0
                        if c_issued < issue_width and pu[3] < limit:
                            c_issued += 1
                            pu[3] += 1
                            c_min_issue = t
                            tf = t + 1.0
                            if tf > c_finish:
                                c_finish = tf
                            break
                        t += 1
                    ti = t + 1
                    if ti > c_finish:
                        c_finish = ti
                    recs = thread_blocks[index][target]
                    pos = 0
                elif code == _PRODUCE or code == _PRODUCE_SYNC:
                    if code == _PRODUCE:
                        _c, ridx, _i, s0, q, limit = rec
                    else:
                        _c, ridx, _i, q, limit = rec
                        s0 = None
                    if len(queues.queues[q]) >= qcap:
                        break  # functionally full: retry after consumers
                    slot_free = queues.slot_free_time(q)
                    if s0 is not None:
                        own_ready = rr[s0]
                        value = regs[s0]
                        if value is _UNDEF:
                            _trap_undef(names[s0], fname)
                    else:
                        own_ready = c_last_mem
                        value = 0
                    mi_f = float(c_min_issue)
                    if mi_f > own_ready:
                        own_ready = mi_f
                    if slot_free > own_ready:
                        core.backpressure_cycles += slot_free - own_ready
                        earliest = slot_free
                    else:
                        earliest = own_ready
                    core.cycle = c_cycle
                    core.issued_in_cycle = c_issued
                    core.min_issue = c_min_issue
                    core.finish = c_finish
                    t = _issue_sa(core, earliest, limit, issue_width)
                    c_cycle = core.cycle
                    c_issued = core.issued_in_cycle
                    c_min_issue = core.min_issue
                    c_finish = core.finish
                    queues.staged_push_time = float(t + 1)
                    queues.try_push(q, value)
                    ti = t + 1
                    if ti > c_finish:
                        c_finish = ti
                    pos += 1
                elif code == _CONSUME or code == _CONSUME_SYNC:
                    if code == _CONSUME:
                        _c, ridx, _i, dest, q, limit = rec
                    else:
                        _c, ridx, _i, q, limit = rec
                        dest = None
                    ok, value = queues.try_pop(q)
                    if not ok:
                        break  # queue empty: blocked
                    if dest is not None:
                        regs[dest] = value
                    core.cycle = c_cycle
                    core.issued_in_cycle = c_issued
                    core.min_issue = c_min_issue
                    core.finish = c_finish
                    t = _issue_sa(core, 0.0, limit, issue_width)
                    c_cycle = core.cycle
                    c_issued = core.issued_in_cycle
                    c_min_issue = core.min_issue
                    c_finish = core.finish
                    data_ready = queues.last_popped_time + sa_latency
                    if queue_crossing is not None:
                        data_ready += queue_crossing[q]
                    ti = t + 1
                    if data_ready > ti:
                        core.operand_wait_cycles += data_ready - ti
                        available = data_ready
                    else:
                        available = float(ti)
                    if dest is not None:
                        rr[dest] = available
                    elif available > c_mem_fence:
                        c_mem_fence = available
                    queues.record_pop_completion(q, available, None)
                    if available > c_finish:
                        c_finish = available
                    pos += 1
                elif code == _EXIT:
                    _c, ridx, _i, limit = rec
                    t = c_min_issue
                    while True:
                        if t > c_cycle:
                            c_cycle = t
                            c_issued = 0
                            pu[0] = pu[1] = pu[2] = pu[3] = 0
                        if c_issued < issue_width and pu[3] < limit:
                            c_issued += 1
                            pu[3] += 1
                            c_min_issue = t
                            tf = t + 1.0
                            if tf > c_finish:
                                c_finish = tf
                            break
                        t += 1
                    ti = t + 1
                    if ti > c_finish:
                        c_finish = ti
                    ccounts[ridx] += 1
                    executed += 1
                    total_steps += 1
                    if total_steps > max_steps:
                        raise MTExecutionLimitExceeded(
                            "%s exceeded %d steps"
                            % (memory_owner.name, max_steps))
                    live[index] = False
                    break
                else:  # _NOP
                    _c, ridx, _i, limit = rec
                    t = c_min_issue
                    while True:
                        if t > c_cycle:
                            c_cycle = t
                            c_issued = 0
                            pu[0] = pu[1] = pu[2] = pu[3] = 0
                        if c_issued < issue_width and pu[0] < limit:
                            c_issued += 1
                            pu[0] += 1
                            c_min_issue = t
                            tf = t + 1.0
                            if tf > c_finish:
                                c_finish = tf
                            break
                        t += 1
                    ti = t + 1
                    if ti > c_finish:
                        c_finish = ti
                    pos += 1
                ccounts[ridx] += 1
                executed += 1
                total_steps += 1
                if total_steps > max_steps:
                    raise MTExecutionLimitExceeded(
                        "%s exceeded %d steps"
                        % (memory_owner.name, max_steps))
            core.cycle = c_cycle
            core.issued_in_cycle = c_issued
            core.min_issue = c_min_issue
            core.finish = c_finish
            core.mem_fence = c_mem_fence
            core.last_mem_complete = c_last_mem
            cur_recs[index] = recs
            cur_idx[index] = pos
            if executed:
                progressed = True
        if not progressed and any(live):
            blocked = [cur_recs[i][cur_idx[i]][2]
                       for i in range(n) if live[i]]
            raise DeadlockError("all live threads blocked: %s" % blocked)

    per_thread_instructions = [0] * n
    per_thread_communication = [0] * n
    opcode_counts: Counter = Counter()
    for index in range(n):
        meta = thread_meta[index]
        executed = 0
        comm = 0
        for ridx, count in enumerate(counts[index]):
            if not count:
                continue
            executed += count
            op = meta[ridx].op
            opcode_counts[op] += count
            if op in COMM_OPCODES:
                comm += count
        per_thread_instructions[index] = executed
        per_thread_communication[index] = comm

    exit_regs = thread_regs[exit_thread]
    exit_index = thread_index[exit_thread]
    live_outs = {}
    for register in memory_owner.live_outs:
        i = exit_index.get(register)
        value = exit_regs[i] if i is not None else None
        live_outs[register] = None if value is _UNDEF else value
    core_finish = [0.0] * max(len(cores), max(placement[:n],
                                              default=-1) + 1)
    for core in cores:
        core_finish[core.core_id] = core.finish
    comm_stats = {
        "backpressure_cycles": sum(c.backpressure_cycles for c in cores),
        "operand_wait_cycles": sum(c.operand_wait_cycles for c in cores),
        "sa_port_delays": sum(c.sa_port_delays for c in cores),
        "mispredictions": sum(c.mispredictions for c in cores),
    }
    return TimedResult(max(core_finish) if core_finish else 0.0,
                       core_finish, per_thread_instructions,
                       per_thread_communication, opcode_counts, live_outs,
                       memory, hierarchy.stats(), queues, comm_stats)


def simulate_program_fast(program: MTProgram,
                          args: Optional[Mapping[str, object]] = None,
                          initial_memory: Optional[
                              Mapping[str, object]] = None,
                          config: MachineConfig = DEFAULT_CONFIG,
                          max_steps: int = 200_000_000,
                          tracer=None,
                          placement=None) -> TimedResult:
    """Fast-backend counterpart of
    :func:`repro.machine.timing.simulate_program`."""
    cores = getattr(placement, "cores", placement)
    if config.topology is None:
        config = config.with_cores(max(program.n_threads, 1))
    return simulate_threads_fast(
        program.threads, program.exit_thread, program.original, args,
        initial_memory, config, n_queues=program.n_queues,
        max_steps=max_steps, tracer=tracer, placement=cores,
        queue_crossing=queue_crossing_penalties(program, config, cores))


def simulate_single_fast(function: Function,
                         args: Optional[Mapping[str, object]] = None,
                         initial_memory: Optional[
                             Mapping[str, object]] = None,
                         config: MachineConfig = DEFAULT_CONFIG,
                         max_steps: int = 200_000_000,
                         tracer=None) -> TimedResult:
    """Fast-backend counterpart of
    :func:`repro.machine.timing.simulate_single`."""
    if config.topology is None:
        config = config.with_cores(1)
    return simulate_threads_fast([function], 0, function, args,
                                 initial_memory, config, n_queues=0,
                                 max_steps=max_steps, tracer=tracer)
