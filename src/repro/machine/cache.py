"""The memory hierarchy: private L1D/L2 per core, shared L3, main memory,
with snoop-based write-invalidate sharing.

The model is a latency model, not a bandwidth model: each access returns the
cycles until the datum is usable, determined by the deepest level that had
to be consulted, and updates LRU/valid state.  Stores complete in one cycle
(write buffer assumption: the L1 is write-through, so the store's latency is
hidden), but they update line state and invalidate other cores' copies.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Tuple

from .config import CacheConfig, MachineConfig


class CacheLevel:
    """One set-associative, LRU cache level (tag store only)."""

    __slots__ = ("config", "n_sets", "sets", "hits", "misses")

    def __init__(self, config: CacheConfig):
        self.config = config
        self.n_sets = max(1, config.size_bytes
                          // (config.line_bytes * config.associativity))
        self.sets: Dict[int, OrderedDict] = {}
        self.hits = 0
        self.misses = 0

    def _locate(self, line_address: int) -> Tuple[int, int]:
        return line_address % self.n_sets, line_address // self.n_sets

    def lookup(self, line_address: int) -> bool:
        index, tag = self._locate(line_address)
        ways = self.sets.get(index)
        if ways is not None and tag in ways:
            ways.move_to_end(tag)
            self.hits += 1
            return True
        self.misses += 1
        return False

    def fill(self, line_address: int) -> None:
        index, tag = self._locate(line_address)
        ways = self.sets.setdefault(index, OrderedDict())
        if tag in ways:
            ways.move_to_end(tag)
            return
        if len(ways) >= self.config.associativity:
            ways.popitem(last=False)  # evict LRU
        ways[tag] = True

    def invalidate(self, line_address: int) -> None:
        index, tag = self._locate(line_address)
        ways = self.sets.get(index)
        if ways is not None:
            ways.pop(tag, None)

    def reset_stats(self) -> None:
        self.hits = 0
        self.misses = 0


class MemoryHierarchy:
    """Per-core L1/L2 plus shared L3; write-invalidate between cores.

    The L3 is split into the topology's cache-sharing domains — one
    global level on any ``shared_l3`` (or flat) machine, one per cluster
    otherwise.  Coherence stays global: a store invalidates every other
    core's private copies regardless of domain."""

    def __init__(self, config: MachineConfig):
        self.config = config
        topo = config.resolve_topology()
        self.n_cores = topo.n_cores
        self.l1 = [CacheLevel(config.l1d) for _ in range(self.n_cores)]
        self.l2 = [CacheLevel(config.l2) for _ in range(self.n_cores)]
        domains = topo.cache_domains()
        self.l3s = [CacheLevel(config.l3) for _ in domains]
        self._domain_of = {core: index
                           for index, domain in enumerate(domains)
                           for core in domain}
        self.coherence_invalidations = 0
        # Level that served the most recent access ("l1"/"l2"/"l3"/"mem"
        # for reads, "store" for writes) — read by the tracer.
        self.last_level = "l1"
        # Hoisted config scalars: access() runs once per simulated memory
        # instruction, so the nested attribute chains add up.
        self._word_bytes = config.word_bytes
        self._l1_line_bytes = config.l1d.line_bytes
        self._l2_line_bytes = config.l2.line_bytes
        self._l3_line_bytes = config.l3.line_bytes
        self._l1_hit = config.l1d.hit_latency
        self._l2_hit = config.l2.hit_latency
        self._l3_hit = config.l3.hit_latency
        self._memory_latency = config.memory_latency

    @property
    def l3(self) -> CacheLevel:
        """The single L3 of a one-domain (flat or shared-L3) machine."""
        if len(self.l3s) != 1:
            raise AttributeError(
                "hierarchy has %d L3 domains; use l3s" % len(self.l3s))
        return self.l3s[0]

    def _line_addresses(self, word_address: int) -> Tuple[int, int, int]:
        byte = word_address * self.config.word_bytes
        return (byte // self.config.l1d.line_bytes,
                byte // self.config.l2.line_bytes,
                byte // self.config.l3.line_bytes)

    def access(self, core: int, word_address: int, is_write: bool) -> int:
        """Perform one access; returns the load-use latency in cycles
        (stores return 1: write-buffered)."""
        byte = word_address * self._word_bytes
        l1_line = byte // self._l1_line_bytes

        # Read fast path: an L1 hit (the common case by far) needs no
        # other line addresses and no L3 domain lookup.
        if not is_write:
            if self.l1[core].lookup(l1_line):
                self.last_level = "l1"
                return self._l1_hit
            l2_line = byte // self._l2_line_bytes
            if self.l2[core].lookup(l2_line):
                self.l1[core].fill(l1_line)
                self.last_level = "l2"
                return self._l2_hit
            l3_line = byte // self._l3_line_bytes
            l3 = self.l3s[self._domain_of[core]]
            if l3.lookup(l3_line):
                self.l2[core].fill(l2_line)
                self.l1[core].fill(l1_line)
                self.last_level = "l3"
                return self._l3_hit
            l3.fill(l3_line)
            self.l2[core].fill(l2_line)
            self.l1[core].fill(l1_line)
            self.last_level = "mem"
            return self._memory_latency

        # Write-through L1: update L1 (write-allocate on hit only),
        # allocate in L2/L3, and invalidate every other core's copies.
        l2_line = byte // self._l2_line_bytes
        l3_line = byte // self._l3_line_bytes
        l3 = self.l3s[self._domain_of[core]]
        self.last_level = "store"
        self.l1[core].lookup(l1_line)
        self.l2[core].fill(l2_line)
        l3.fill(l3_line)
        for other in range(self.n_cores):
            if other == core:
                continue
            before = self._present(other, l1_line, l2_line)
            self.l1[other].invalidate(l1_line)
            self.l2[other].invalidate(l2_line)
            if before:
                self.coherence_invalidations += 1
        return 1

    def _present(self, core: int, l1_line: int, l2_line: int) -> bool:
        index, tag = self.l1[core]._locate(l1_line)
        in_l1 = tag in self.l1[core].sets.get(index, ())
        index2, tag2 = self.l2[core]._locate(l2_line)
        in_l2 = tag2 in self.l2[core].sets.get(index2, ())
        return in_l1 or in_l2

    def stats(self) -> Dict[str, int]:
        return {
            "l1_hits": sum(c.hits for c in self.l1),
            "l1_misses": sum(c.misses for c in self.l1),
            "l2_hits": sum(c.hits for c in self.l2),
            "l2_misses": sum(c.misses for c in self.l2),
            "l3_hits": sum(c.hits for c in self.l3s),
            "l3_misses": sum(c.misses for c in self.l3s),
            "coherence_invalidations": self.coherence_invalidations,
        }
