"""Machine configuration: the dual-core CMP model of the papers' Figure 6(a).

Two (or more) validated-Itanium-2-like in-order cores connected by a
synchronization array (Rangan et al., PACT 2004).  All parameters below are
taken from the shared experimental setup table; they drive both the timing
simulator and the partitioners' cost models.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Optional, Tuple

from ..ir.instructions import Instruction, OpKind, Opcode
from .topology import Topology


@dataclass(frozen=True)
class CacheConfig:
    name: str
    size_bytes: int
    associativity: int
    line_bytes: int
    hit_latency: int


@dataclass(frozen=True)
class MachineConfig:
    """The CMP model's parameters (defaults = the papers' configuration)."""

    n_cores: int = 2
    issue_width: int = 6
    alu_ports: int = 6
    memory_ports: int = 4
    fp_ports: int = 2
    branch_ports: int = 3
    taken_branch_penalty: int = 1
    # Branch handling: "static" charges taken_branch_penalty on every
    # taken branch (the conservative default); "bimodal" models per-branch
    # 2-bit counters with a mispredict penalty instead; "perfect" never
    # pays a redirect penalty.
    branch_predictor: str = "static"
    mispredict_penalty: int = 6

    # Synchronization array.
    sa_queues: int = 256
    sa_queue_size: int = 1          # 32 for DSWP (pipeline parallelism)
    sa_access_latency: int = 1
    sa_ports: int = 4               # shared between all cores
    # Minimum producer-to-consumer cycles (produce at commit + SA access).
    comm_latency: int = 2

    # Memory hierarchy (private L1/L2, shared L3).
    l1d: CacheConfig = CacheConfig("L1D", 16 * 1024, 4, 64, 1)
    l2: CacheConfig = CacheConfig("L2", 256 * 1024, 8, 128, 7)
    l3: CacheConfig = CacheConfig("L3", 1536 * 1024, 12, 128, 12)
    memory_latency: int = 141
    word_bytes: int = 8

    # Explicit machine topology (clusters, per-cluster SA slices, L3
    # domains).  ``None`` resolves to a flat single-cluster machine built
    # from the scalar SA parameters above — exactly the papers' shape.
    topology: Optional[Topology] = None

    # Operation latencies (cycles until the result is usable).
    op_latencies: Dict[Opcode, int] = field(default_factory=lambda: dict(
        _DEFAULT_LATENCIES))

    def latency_of(self, instruction: Instruction) -> int:
        """Best-case (L1-hit, queue-ready) latency of one instruction."""
        return self.op_latencies.get(instruction.op, 1)

    def for_dswp(self) -> "MachineConfig":
        """The DSWP configuration: 32-entry queues."""
        return replace(self, sa_queue_size=32)

    def with_cores(self, n_cores: int) -> "MachineConfig":
        """A copy with ``n_cores`` set.  How many of those cores a
        program actually occupies is the placement stage's business
        (:mod:`repro.machine.placement`) — this only sizes the machine."""
        return replace(self, n_cores=n_cores)

    def resolve_topology(self) -> Topology:
        """The effective topology: the explicit one when set, else a
        flat single-cluster machine of ``n_cores`` cores carrying this
        config's scalar SA parameters (bit-for-bit the legacy model)."""
        if self.topology is not None:
            return self.topology
        return Topology.flat(self.n_cores,
                             sa_access_latency=self.sa_access_latency,
                             sa_ports=self.sa_ports,
                             sa_queues=self.sa_queues)

    def crossing_cycles(self, core_a: int, core_b: int) -> int:
        """Extra communication latency between two placed cores (zero on
        any flat machine)."""
        return self.resolve_topology().crossing(core_a, core_b)

    def port_kind(self, instruction: Instruction) -> str:
        """Which issue-port class an instruction occupies.  produce/consume
        use the M (memory) pipeline, as in the papers' ISA extension."""
        kind = instruction.kind
        if kind in (OpKind.LOAD, OpKind.STORE, OpKind.COMM):
            return "memory"
        if kind is OpKind.FP:
            return "fp"
        if kind in (OpKind.BRANCH, OpKind.JUMP, OpKind.EXIT):
            return "branch"
        return "alu"

    def port_limit(self, port: str) -> int:
        return {"memory": self.memory_ports, "fp": self.fp_ports,
                "branch": self.branch_ports, "alu": self.alu_ports}[port]


_DEFAULT_LATENCIES: Dict[Opcode, int] = {}
for _op in Opcode:
    _DEFAULT_LATENCIES[_op] = 1
_DEFAULT_LATENCIES.update({
    Opcode.MUL: 3,
    Opcode.IDIV: 24,
    Opcode.IMOD: 24,
    Opcode.SHL: 1,
    Opcode.SHR: 1,
    Opcode.ITOF: 4,
    Opcode.FTOI: 4,
    Opcode.FADD: 4,
    Opcode.FSUB: 4,
    Opcode.FMUL: 4,
    Opcode.FMIN: 4,
    Opcode.FMAX: 4,
    Opcode.FNEG: 1,
    Opcode.FABS: 1,
    Opcode.FDIV: 24,
    Opcode.FSQRT: 30,
    Opcode.LOAD: 1,     # plus cache penalties from the hierarchy model
    Opcode.STORE: 1,
    Opcode.PRODUCE: 1,
    Opcode.CONSUME: 1,
    Opcode.PRODUCE_SYNC: 1,
    Opcode.CONSUME_SYNC: 1,
})

DEFAULT_CONFIG = MachineConfig()


@dataclass(frozen=True)
class TunableField:
    """Validation contract of one machine-config field the auto-tuner
    (``repro tune``) may override: integer fields carry an inclusive
    range, choice fields an allowed-value set."""

    lo: Optional[int] = None
    hi: Optional[int] = None
    choices: Optional[Tuple[str, ...]] = None

    def check(self, name: str, value: object) -> None:
        if self.choices is not None:
            if value not in self.choices:
                raise ValueError(
                    "override %r must be one of %s, got %r"
                    % (name, ", ".join(self.choices), value))
            return
        if not isinstance(value, int) or isinstance(value, bool):
            raise ValueError("override %r must be an integer, got %r"
                             % (name, value))
        if not self.lo <= value <= self.hi:
            raise ValueError("override %r must be in [%d, %d], got %d"
                             % (name, self.lo, self.hi, value))


#: The :class:`MachineConfig` fields ``repro tune`` may override
#: (``machine.<field>`` knobs), each with its validity envelope.  The
#: whitelist is deliberate: structural fields (``n_cores``, caches,
#: ``topology``) have dedicated pipeline knobs or invariants of their
#: own and are excluded.
TUNABLE_MACHINE_FIELDS: Dict[str, TunableField] = {
    "issue_width": TunableField(1, 16),
    "alu_ports": TunableField(1, 16),
    "memory_ports": TunableField(1, 16),
    "fp_ports": TunableField(1, 16),
    "branch_ports": TunableField(1, 16),
    "taken_branch_penalty": TunableField(0, 16),
    "branch_predictor": TunableField(
        choices=("static", "bimodal", "perfect")),
    "mispredict_penalty": TunableField(0, 64),
    "sa_queue_size": TunableField(1, 1024),
    "sa_access_latency": TunableField(1, 16),
    "sa_ports": TunableField(1, 64),
    "comm_latency": TunableField(1, 32),
    "memory_latency": TunableField(1, 2048),
}


def config_table(config: MachineConfig = DEFAULT_CONFIG) -> str:
    """Render the machine-configuration table (the papers' Figure 6(a))."""
    rows = [
        ("Core", "%d issue; ports: %d ALU, %d memory, %d FP, %d branch"
         % (config.issue_width, config.alu_ports, config.memory_ports,
            config.fp_ports, config.branch_ports)),
        ("L1D Cache", "%d cycle, %d KB, %d-way, %dB lines"
         % (config.l1d.hit_latency, config.l1d.size_bytes // 1024,
            config.l1d.associativity, config.l1d.line_bytes)),
        ("L2 Cache", "%d cycles, %d KB, %d-way, %dB lines"
         % (config.l2.hit_latency, config.l2.size_bytes // 1024,
            config.l2.associativity, config.l2.line_bytes)),
        ("Shared L3 Cache", "%d cycles, %.1f MB, %d-way, %dB lines"
         % (config.l3.hit_latency, config.l3.size_bytes / (1024 * 1024),
            config.l3.associativity, config.l3.line_bytes)),
        ("Main Memory", "latency: %d cycles" % config.memory_latency),
        ("Synch. Array", "%d queues, %d-entry, %d-cycle access, %d ports"
         % (config.sa_queues, config.sa_queue_size,
            config.sa_access_latency, config.sa_ports)),
        ("Operand Network", "produce-to-consume: %d cycles"
         % config.comm_latency),
        ("Branch Handling", "%s predictor, mispredict: %d cycles, "
         "taken-branch: %d cycle(s)"
         % (config.branch_predictor, config.mispredict_penalty,
            config.taken_branch_penalty)),
        ("Cores", str(config.n_cores)),
        ("Topology", config.resolve_topology().summary()),
    ]
    width = max(len(label) for label, _ in rows)
    return "\n".join("%-*s | %s" % (width, label, text)
                     for label, text in rows)
