"""Functional (untimed) multi-threaded simulation.

Runs an :class:`~repro.mtcg.program.MTProgram`'s threads against a shared
memory and blocking FIFO queues, round-robin, one instruction at a time.
This is the semantic half of the CMP model: it establishes *what* the
multi-threaded code computes (which must equal the single-threaded run) and
detects deadlock; the timing model layers *when* on top.
"""

from __future__ import annotations

from collections import Counter, deque
from typing import Dict, List, Mapping, Optional

from ..interp.context import QueueSet, StepStatus, ThreadContext
from ..interp.state import Memory, bind_params, make_memory
from ..mtcg.program import MTProgram


class DeadlockError(Exception):
    """Every live thread is blocked on a queue operation."""


class MTExecutionLimitExceeded(Exception):
    pass


class FifoQueues(QueueSet):
    """Bounded FIFO queues (the functional view of the synchronization
    array).  ``capacity`` bounds each queue's occupancy; the hardware uses
    32-entry queues for DSWP and single-element queues otherwise."""

    def __init__(self, n_queues: int, capacity: int = 32):
        if capacity < 1:
            raise ValueError("queue capacity must be >= 1")
        self.capacity = capacity
        self.queues: List[deque] = [deque() for _ in range(n_queues)]
        self.total_pushes = 0
        self.max_occupancy = 0
        self.pushes_per_queue: List[int] = [0] * n_queues

    def try_push(self, queue: int, value) -> bool:
        q = self.queues[queue]
        if len(q) >= self.capacity:
            return False
        q.append(value)
        self.total_pushes += 1
        self.pushes_per_queue[queue] += 1
        self.max_occupancy = max(self.max_occupancy, len(q))
        return True

    def try_pop(self, queue: int):
        q = self.queues[queue]
        if not q:
            return False, None
        return True, q.popleft()

    def all_empty(self) -> bool:
        return all(not q for q in self.queues)


class MTRunResult:
    """Outcome of one functional multi-threaded execution."""

    def __init__(self, program: MTProgram, memory: Memory,
                 thread_regs: List[Dict[str, object]],
                 per_thread_instructions: List[int],
                 per_thread_communication: List[int],
                 opcode_counts: Counter, queues: FifoQueues):
        self.program = program
        self.memory = memory
        self.thread_regs = thread_regs
        self.per_thread_instructions = per_thread_instructions
        self.per_thread_communication = per_thread_communication
        self.opcode_counts = opcode_counts
        self.queues = queues
        # Per-iid dynamic counts; populated when requested.
        self.instruction_counts: Optional[Counter] = None

    @property
    def live_outs(self) -> Dict[str, object]:
        regs = self.thread_regs[self.program.exit_thread]
        return {register: regs.get(register)
                for register in self.program.original.live_outs}

    @property
    def dynamic_instructions(self) -> int:
        return sum(self.per_thread_instructions)

    @property
    def communication_instructions(self) -> int:
        return sum(self.per_thread_communication)

    @property
    def computation_instructions(self) -> int:
        return self.dynamic_instructions - self.communication_instructions

    def mem_object(self, name: str) -> List:
        obj = self.program.original.mem_objects[name]
        return self.memory.read_array(obj.base, obj.size)

    def __repr__(self) -> str:  # pragma: no cover
        return "<MTRunResult %s: %d instrs (%d comm)>" % (
            self.program.original.name, self.dynamic_instructions,
            self.communication_instructions)


def run_mt_program(program: MTProgram, args: Optional[Mapping[str, object]] = None,
                   initial_memory: Optional[Mapping[str, object]] = None,
                   queue_capacity: int = 32,
                   max_steps: int = 100_000_000,
                   count_per_instruction: bool = False) -> MTRunResult:
    """Execute all threads round-robin until every thread exits.

    Raises :class:`DeadlockError` if all live threads block — which the
    MTCG pairing invariant promises never happens for generated code.
    With ``count_per_instruction``, the result carries a dynamic execution
    count per static instruction (iid) for overhead attribution.
    """
    memory = make_memory(program.original, initial_memory)
    queues = FifoQueues(program.n_queues, queue_capacity)
    contexts = []
    for thread_function in program.threads:
        regs = bind_params(thread_function, dict(args) if args else {})
        contexts.append(ThreadContext(thread_function, regs, memory, queues))

    n = len(contexts)
    per_thread_instructions = [0] * n
    per_thread_communication = [0] * n
    opcode_counts: Counter = Counter()
    instruction_counts: Optional[Counter] = (
        Counter() if count_per_instruction else None)
    total_steps = 0

    live = [not c.exited for c in contexts]
    while any(live):
        progressed = False
        for index, context in enumerate(contexts):
            if not live[index]:
                continue
            result = context.step()
            if result.status is StepStatus.BLOCKED:
                continue
            progressed = True
            total_steps += 1
            if total_steps > max_steps:
                raise MTExecutionLimitExceeded(
                    "%s exceeded %d steps"
                    % (program.original.name, max_steps))
            if result.status is StepStatus.EXITED:
                live[index] = False
            instruction = result.instruction
            if instruction is not None:
                per_thread_instructions[index] += 1
                opcode_counts[instruction.op] += 1
                if instruction_counts is not None:
                    instruction_counts[instruction.iid] += 1
                if instruction.is_communication():
                    per_thread_communication[index] += 1
        if not progressed and any(live):
            blocked = [contexts[i].current_instruction()
                       for i in range(n) if live[i]]
            raise DeadlockError(
                "all live threads blocked in %s: %s"
                % (program.original.name, blocked))
    result = MTRunResult(program, memory, [c.regs for c in contexts],
                         per_thread_instructions, per_thread_communication,
                         opcode_counts, queues)
    result.instruction_counts = instruction_counts
    return result
