"""Event-driven timing model of the CMP.

Each core is an in-order, multi-issue pipeline modeled at instruction
granularity: an instruction issues at the earliest cycle where (a) program
order allows, (b) an issue slot and a port of its class are free, (c) its
source registers are ready (stall-on-use scoreboard), and (d) — for
communication — a synchronization-array port is free and queue back-pressure
allows.  Loads take their latency from the cache hierarchy; consumes become
ready when the produced value arrives (produce commits one cycle after
issue, plus the SA access latency), so a consume issued early simply makes
its destination register ready later, exactly the stall-on-use behaviour
the papers describe.

Threads are co-simulated with the functional round-robin executor; queue
timestamps carry availability times across cores (a Kahn network, so the
timing result is deterministic regardless of interleaving).  The memory
hierarchy is consulted in interleaving order — an approximation, noted in
DESIGN.md, that preserves locality and sharing effects without a global
event queue.
"""

from __future__ import annotations

from collections import Counter, deque
from typing import Dict, List, Mapping, Optional, Sequence

from ..interp.context import StepStatus, ThreadContext
from ..interp.state import Memory, bind_params, make_memory
from ..ir.cfg import Function
from ..ir.instructions import OpKind, Opcode
from ..mtcg.program import MTProgram
from .cache import MemoryHierarchy
from .config import DEFAULT_CONFIG, MachineConfig
from .functional import (DeadlockError, FifoQueues, MTExecutionLimitExceeded)


class SAPortSchedule:
    """Global per-cycle budget of synchronization-array ports."""

    def __init__(self, ports: int):
        self.ports = ports
        self.booked: Dict[int, int] = {}

    def next_free(self, cycle: int) -> int:
        while self.booked.get(cycle, 0) >= self.ports:
            cycle += 1
        return cycle

    def book(self, cycle: int) -> None:
        self.booked[cycle] = self.booked.get(cycle, 0) + 1


class TimedQueues(FifoQueues):
    """FIFO queues carrying value-availability timestamps.

    The simulator stages the producer-side availability time before letting
    the context execute a produce, and reads the timestamp of the popped
    value after a consume.
    """

    def __init__(self, n_queues: int, capacity: int):
        super().__init__(n_queues, capacity)
        self.timestamps: List[deque] = [deque() for _ in range(n_queues)]
        self.pop_times: List[deque] = [deque(maxlen=max(capacity, 1))
                                       for _ in range(n_queues)]
        self.push_counts = [0] * n_queues
        self.pop_counts = [0] * n_queues
        self.staged_push_time = 0.0
        self.last_popped_time = 0.0

    def try_push(self, queue: int, value) -> bool:
        if not super().try_push(queue, value):
            return False
        self.timestamps[queue].append(self.staged_push_time)
        self.push_counts[queue] += 1
        return True

    def try_pop(self, queue: int):
        ok, value = super().try_pop(queue)
        if ok:
            self.last_popped_time = self.timestamps[queue].popleft()
            self.pop_counts[queue] += 1
        return ok, value

    def slot_free_time(self, queue: int) -> float:
        """Earliest cycle the next push has a free slot (back-pressure)."""
        pushes = self.push_counts[queue]
        if pushes < self.capacity:
            return 0.0
        # The (pushes - capacity)-th pop freed the slot; pop_times keeps the
        # last `capacity` pop completion times.
        index = (pushes - self.capacity) - (self.pop_counts[queue]
                                            - len(self.pop_times[queue]))
        return self.pop_times[queue][index]

    def record_pop_completion(self, queue: int, cycle: float) -> None:
        self.pop_times[queue].append(cycle)


class CoreTiming:
    """In-order issue state of one core."""

    def __init__(self, core_id: int, config: MachineConfig,
                 sa_ports: SAPortSchedule):
        self.core_id = core_id
        self.config = config
        self.sa_ports = sa_ports
        self.cycle = 0
        self.issued_in_cycle = 0
        self.port_use: Counter = Counter()
        self.min_issue = 0
        self.reg_ready: Dict[str, float] = {}
        self.mem_fence = 0.0
        self.last_mem_complete = 0.0
        self.finish = 0.0
        self.issued_total = 0
        # Bimodal predictor state: 2-bit counter per (static branch iid).
        self.branch_counters: Dict[int, int] = {}
        self.mispredictions = 0
        # Communication-stall accounting.
        self.backpressure_cycles = 0.0   # produce waited for a free slot
        self.operand_wait_cycles = 0.0   # consume value arrived late
        self.sa_port_delays = 0          # comm ops displaced by port limit

    def branch_redirect(self, instruction, taken: bool) -> int:
        """Cycles of redirect penalty after this branch resolves."""
        mode = self.config.branch_predictor
        if mode == "perfect":
            return 0
        if mode == "static":
            return self.config.taken_branch_penalty if taken else 0
        # Bimodal 2-bit saturating counter, initialized weakly taken.
        counter = self.branch_counters.get(instruction.iid, 2)
        predicted_taken = counter >= 2
        if taken:
            self.branch_counters[instruction.iid] = min(3, counter + 1)
        else:
            self.branch_counters[instruction.iid] = max(0, counter - 1)
        if predicted_taken == taken:
            return 0
        self.mispredictions += 1
        return self.config.mispredict_penalty

    def ready_time(self, registers: Sequence[str]) -> float:
        ready = 0.0
        for register in registers:
            ready = max(ready, self.reg_ready.get(register, 0.0))
        return ready

    def find_issue_slot(self, earliest: float, port: str,
                        uses_sa: bool) -> int:
        t = int(max(earliest, self.min_issue))
        if earliest > t:
            t += 1
        limit = self.config.port_limit(port)
        while True:
            if t > self.cycle:
                self.cycle = t
                self.issued_in_cycle = 0
                self.port_use.clear()
            if (self.issued_in_cycle < self.config.issue_width
                    and self.port_use[port] < limit):
                if uses_sa:
                    free = self.sa_ports.next_free(t)
                    if free != t:
                        self.sa_port_delays += 1
                        t = free
                        continue
                    self.sa_ports.book(t)
                self.issued_in_cycle += 1
                self.port_use[port] += 1
                self.min_issue = t
                self.issued_total += 1
                self.finish = max(self.finish, float(t + 1))
                return t
            t += 1

    def complete(self, cycle: float) -> None:
        self.finish = max(self.finish, cycle)


class TimedResult:
    """Outcome of a timed multi-threaded (or single-threaded) run."""

    def __init__(self, cycles: float, core_finish: List[float],
                 per_thread_instructions: List[int],
                 per_thread_communication: List[int],
                 opcode_counts: Counter, live_outs: Dict[str, object],
                 memory: Memory, cache_stats: Dict[str, int],
                 queues: Optional[TimedQueues],
                 comm_stats: Optional[Dict[str, float]] = None):
        self.cycles = cycles
        self.core_finish = core_finish
        self.per_thread_instructions = per_thread_instructions
        self.per_thread_communication = per_thread_communication
        self.opcode_counts = opcode_counts
        self.live_outs = live_outs
        self.memory = memory
        self.cache_stats = cache_stats
        self.queues = queues
        self.comm_stats = comm_stats or {}

    @property
    def dynamic_instructions(self) -> int:
        return sum(self.per_thread_instructions)

    @property
    def communication_instructions(self) -> int:
        return sum(self.per_thread_communication)

    @property
    def computation_instructions(self) -> int:
        return self.dynamic_instructions - self.communication_instructions

    def __repr__(self) -> str:  # pragma: no cover
        return "<TimedResult %.0f cycles, %d instrs>" % (
            self.cycles, self.dynamic_instructions)


def simulate_threads(functions: Sequence[Function], exit_thread: int,
                     memory_owner: Function,
                     args: Optional[Mapping[str, object]] = None,
                     initial_memory: Optional[Mapping[str, object]] = None,
                     config: MachineConfig = DEFAULT_CONFIG,
                     n_queues: int = 0,
                     max_steps: int = 200_000_000) -> TimedResult:
    """Co-simulate ``functions`` (one per core) functionally + in time."""
    memory = make_memory(memory_owner, initial_memory)
    queues = TimedQueues(n_queues, config.sa_queue_size) if n_queues else None
    hierarchy = MemoryHierarchy(config)
    sa_ports = SAPortSchedule(config.sa_ports)

    contexts: List[ThreadContext] = []
    cores: List[CoreTiming] = []
    for index, function in enumerate(functions):
        regs = bind_params(function, dict(args) if args else {})
        contexts.append(ThreadContext(function, regs, memory, queues))
        cores.append(CoreTiming(index, config, sa_ports))

    n = len(contexts)
    per_thread_instructions = [0] * n
    per_thread_communication = [0] * n
    opcode_counts: Counter = Counter()
    live = [not c.exited for c in contexts]
    total_steps = 0

    while any(live):
        progressed = False
        for index, context in enumerate(contexts):
            if not live[index]:
                continue
            core = cores[index]
            # Budget: run a burst of instructions per thread per visit to
            # amortize loop overhead while keeping queues causal.
            for _ in range(64):
                instruction = context.current_instruction()
                if instruction is None:
                    live[index] = False
                    break
                op = instruction.op
                uses_sa = instruction.is_communication()

                if op is Opcode.PRODUCE or op is Opcode.PRODUCE_SYNC:
                    if len(queues.queues[instruction.queue]) \
                            >= queues.capacity:
                        break  # functionally full: retry after consumers run
                    slot_free = queues.slot_free_time(instruction.queue)
                    if op is Opcode.PRODUCE:
                        own_ready = core.ready_time(instruction.srcs)
                    else:
                        own_ready = core.last_mem_complete
                    own_ready = max(own_ready, float(core.min_issue))
                    if slot_free > own_ready:
                        core.backpressure_cycles += slot_free - own_ready
                    earliest = max(slot_free, own_ready)
                    t = core.find_issue_slot(earliest, "memory", True)
                    queues.staged_push_time = float(t + 1)
                    result = context.step()
                    core.complete(t + 1)
                elif op is Opcode.CONSUME or op is Opcode.CONSUME_SYNC:
                    result = context.step()
                    if result.status is StepStatus.BLOCKED:
                        break
                    t = core.find_issue_slot(0.0, "memory", True)
                    data_ready = (queues.last_popped_time
                                  + config.sa_access_latency)
                    if data_ready > t + 1:
                        core.operand_wait_cycles += data_ready - (t + 1)
                    available = max(float(t + 1), data_ready)
                    if op is Opcode.CONSUME:
                        core.reg_ready[instruction.dest] = available
                    else:
                        core.mem_fence = max(core.mem_fence, available)
                    queues.record_pop_completion(instruction.queue,
                                                 available)
                    core.complete(available)
                else:
                    result = context.step()
                    if result.status is StepStatus.BLOCKED:  # pragma: no cover
                        break
                    _time_plain_instruction(core, hierarchy, config,
                                            instruction, result)

                progressed = True
                total_steps += 1
                if total_steps > max_steps:
                    raise MTExecutionLimitExceeded(
                        "%s exceeded %d steps"
                        % (memory_owner.name, max_steps))
                per_thread_instructions[index] += 1
                opcode_counts[op] += 1
                if uses_sa:
                    per_thread_communication[index] += 1
                if result.status is StepStatus.EXITED:
                    live[index] = False
                    break
        if not progressed and any(live):
            blocked = [contexts[i].current_instruction()
                       for i in range(n) if live[i]]
            raise DeadlockError("all live threads blocked: %s" % blocked)

    live_outs = {register: contexts[exit_thread].regs.get(register)
                 for register in memory_owner.live_outs}
    core_finish = [core.finish for core in cores]
    comm_stats = {
        "backpressure_cycles": sum(c.backpressure_cycles for c in cores),
        "operand_wait_cycles": sum(c.operand_wait_cycles for c in cores),
        "sa_port_delays": sum(c.sa_port_delays for c in cores),
        "mispredictions": sum(c.mispredictions for c in cores),
    }
    return TimedResult(max(core_finish) if core_finish else 0.0,
                       core_finish, per_thread_instructions,
                       per_thread_communication, opcode_counts, live_outs,
                       memory, hierarchy.stats(), queues, comm_stats)


def _time_plain_instruction(core: CoreTiming, hierarchy: MemoryHierarchy,
                            config: MachineConfig, instruction,
                            result) -> None:
    kind = instruction.kind
    if kind is OpKind.LOAD:
        earliest = max(core.ready_time(instruction.srcs), core.mem_fence)
        t = core.find_issue_slot(earliest, "memory", False)
        latency = hierarchy.access(core.core_id, result.mem_address, False)
        core.reg_ready[instruction.dest] = t + latency
        core.last_mem_complete = max(core.last_mem_complete, t + latency)
        core.complete(t + latency)
    elif kind is OpKind.STORE:
        earliest = max(core.ready_time(instruction.srcs), core.mem_fence)
        t = core.find_issue_slot(earliest, "memory", False)
        hierarchy.access(core.core_id, result.mem_address, True)
        core.last_mem_complete = max(core.last_mem_complete, float(t + 1))
        core.complete(t + 1)
    elif kind is OpKind.BRANCH:
        t = core.find_issue_slot(core.ready_time(instruction.srcs),
                                 "branch", False)
        penalty = core.branch_redirect(instruction, result.branch_taken)
        if penalty:
            core.min_issue = t + 1 + penalty
        core.complete(t + 1)
    elif kind is OpKind.JUMP:
        t = core.find_issue_slot(0.0, "branch", False)
        core.complete(t + 1)
    elif kind is OpKind.EXIT:
        t = core.find_issue_slot(core.ready_time(
            instruction.used_registers()), "branch", False)
        core.complete(t + 1)
    elif kind is OpKind.NOP:
        t = core.find_issue_slot(0.0, "alu", False)
        core.complete(t + 1)
    else:
        port = "fp" if kind is OpKind.FP else "alu"
        t = core.find_issue_slot(core.ready_time(instruction.srcs), port,
                                 False)
        latency = config.latency_of(instruction)
        if instruction.dest is not None:
            core.reg_ready[instruction.dest] = t + latency
        core.complete(t + latency)


def simulate_program(program: MTProgram,
                     args: Optional[Mapping[str, object]] = None,
                     initial_memory: Optional[Mapping[str, object]] = None,
                     config: MachineConfig = DEFAULT_CONFIG,
                     max_steps: int = 200_000_000) -> TimedResult:
    """Timed simulation of MTCG output on ``len(threads)`` cores."""
    config = config.with_threads(max(program.n_threads, 1))
    return simulate_threads(program.threads, program.exit_thread,
                            program.original, args, initial_memory, config,
                            n_queues=program.n_queues, max_steps=max_steps)


def simulate_single(function: Function,
                    args: Optional[Mapping[str, object]] = None,
                    initial_memory: Optional[Mapping[str, object]] = None,
                    config: MachineConfig = DEFAULT_CONFIG,
                    max_steps: int = 200_000_000) -> TimedResult:
    """Timed simulation of the original single-threaded code on one core."""
    config = config.with_threads(1)
    return simulate_threads([function], 0, function, args, initial_memory,
                            config, n_queues=0, max_steps=max_steps)
