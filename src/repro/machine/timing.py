"""Event-driven timing model of the CMP.

Each core is an in-order, multi-issue pipeline modeled at instruction
granularity: an instruction issues at the earliest cycle where (a) program
order allows, (b) an issue slot and a port of its class are free, (c) its
source registers are ready (stall-on-use scoreboard), and (d) — for
communication — a synchronization-array port is free and queue back-pressure
allows.  Loads take their latency from the cache hierarchy; consumes become
ready when the produced value arrives (produce commits one cycle after
issue, plus the SA access latency), so a consume issued early simply makes
its destination register ready later, exactly the stall-on-use behaviour
the papers describe.

Threads are co-simulated with the functional round-robin executor; queue
timestamps carry availability times across cores (a Kahn network, so the
timing result is deterministic regardless of interleaving).  The memory
hierarchy is consulted in interleaving order — an approximation, noted in
DESIGN.md, that preserves locality and sharing effects without a global
event queue.
"""

from __future__ import annotations

from collections import Counter, deque
from typing import Dict, List, Mapping, Optional, Sequence

from ..interp.context import StepStatus, ThreadContext
from ..interp.state import Memory, bind_params, make_memory
from ..ir.cfg import Function
from ..ir.instructions import OpKind, Opcode
from ..mtcg.program import MTProgram
from ..trace.events import PRODUCER_CATEGORY
from .cache import MemoryHierarchy
from .config import DEFAULT_CONFIG, MachineConfig
from .functional import (DeadlockError, FifoQueues, MTExecutionLimitExceeded)


class SAPortSchedule:
    """Global per-cycle budget of synchronization-array ports."""

    #: Prune the booking dict once it holds this many cycle entries.
    PRUNE_THRESHOLD = 4096

    def __init__(self, ports: int):
        self.ports = ports
        self.booked: Dict[int, int] = {}

    def next_free(self, cycle: int) -> int:
        while self.booked.get(cycle, 0) >= self.ports:
            cycle += 1
        return cycle

    def book(self, cycle: int) -> None:
        self.booked[cycle] = self.booked.get(cycle, 0) + 1

    def prune(self, watermark: int) -> None:
        """Drop bookings below ``watermark`` so long simulations don't
        grow the dict monotonically.

        Safe whenever every future ``next_free(t)`` query has
        ``t >= watermark``: cores only ever query at or above their own
        ``min_issue``, which never decreases, so the minimum
        ``min_issue`` over live cores is a valid watermark.
        """
        stale = [cycle for cycle in self.booked if cycle < watermark]
        for cycle in stale:
            del self.booked[cycle]


class TimedQueues(FifoQueues):
    """FIFO queues carrying value-availability timestamps.

    The simulator stages the producer-side availability time before letting
    the context execute a produce, and reads the timestamp of the popped
    value after a consume.
    """

    def __init__(self, n_queues: int, capacity: int):
        super().__init__(n_queues, capacity)
        self.timestamps: List[deque] = [deque() for _ in range(n_queues)]
        self.pop_times: List[deque] = [deque(maxlen=max(capacity, 1))
                                       for _ in range(n_queues)]
        self.push_counts = [0] * n_queues
        self.pop_counts = [0] * n_queues
        self.staged_push_time = 0.0
        self.last_popped_time = 0.0
        # Event-seq mirrors of the timestamp bookkeeping, threading
        # cross-thread dependence edges through the queues when tracing.
        self.producer_seqs: List[deque] = [deque() for _ in range(n_queues)]
        self.pop_seqs: List[deque] = [deque(maxlen=max(capacity, 1))
                                      for _ in range(n_queues)]
        self.staged_push_seq: Optional[int] = None
        self.last_popped_seq: Optional[int] = None

    def try_push(self, queue: int, value) -> bool:
        if not super().try_push(queue, value):
            return False
        self.timestamps[queue].append(self.staged_push_time)
        self.producer_seqs[queue].append(self.staged_push_seq)
        self.push_counts[queue] += 1
        return True

    def try_pop(self, queue: int):
        ok, value = super().try_pop(queue)
        if ok:
            self.last_popped_time = self.timestamps[queue].popleft()
            self.last_popped_seq = self.producer_seqs[queue].popleft()
            self.pop_counts[queue] += 1
        return ok, value

    def slot_free_time(self, queue: int) -> float:
        """Earliest cycle the next push has a free slot (back-pressure)."""
        pushes = self.push_counts[queue]
        if pushes < self.capacity:
            return 0.0
        # The (pushes - capacity)-th pop freed the slot; pop_times keeps the
        # last `capacity` pop completion times.
        index = (pushes - self.capacity) - (self.pop_counts[queue]
                                            - len(self.pop_times[queue]))
        return self.pop_times[queue][index]

    def slot_free_seq(self, queue: int) -> Optional[int]:
        """Event seq of the consume that freed the next push's slot."""
        pushes = self.push_counts[queue]
        if pushes < self.capacity:
            return None
        index = (pushes - self.capacity) - (self.pop_counts[queue]
                                            - len(self.pop_seqs[queue]))
        return self.pop_seqs[queue][index]

    def record_pop_completion(self, queue: int, cycle: float,
                              seq: Optional[int] = None) -> None:
        self.pop_times[queue].append(cycle)
        self.pop_seqs[queue].append(seq)


class CoreTiming:
    """In-order issue state of one core."""

    def __init__(self, core_id: int, config: MachineConfig,
                 sa_ports: SAPortSchedule):
        self.core_id = core_id
        self.config = config
        self.sa_ports = sa_ports
        self.cycle = 0
        self.issued_in_cycle = 0
        self.port_use: Counter = Counter()
        self.min_issue = 0
        self.reg_ready: Dict[str, float] = {}
        self.mem_fence = 0.0
        self.last_mem_complete = 0.0
        self.finish = 0.0
        self.issued_total = 0
        # Bimodal predictor state: 2-bit counter per (static branch iid).
        self.branch_counters: Dict[int, int] = {}
        self.mispredictions = 0
        # Communication-stall accounting.
        self.backpressure_cycles = 0.0   # produce waited for a free slot
        self.operand_wait_cycles = 0.0   # consume value arrived late
        self.sa_port_delays = 0          # comm ops displaced by port limit
        # Per-issue conflict counters (read by the tracer after each
        # find_issue_slot call; pure bookkeeping, results unchanged).
        self.last_port_delay = 0         # cycles lost to width/port limits
        self.last_sa_delay = 0           # cycles displaced by SA ports
        # Trace-only dependence bookkeeping (written only when tracing).
        self.reg_source: Dict[str, tuple] = {}   # reg -> (seq, producer kind)
        self.last_mem_event: Optional[int] = None
        self.last_mem_kind = "store"
        self.fence_event: Optional[int] = None
        self.last_event_seq: Optional[int] = None
        self.last_event_issue = 0
        self.pending_control_dep: Optional[tuple] = None

    def branch_redirect(self, instruction, taken: bool) -> int:
        """Cycles of redirect penalty after this branch resolves."""
        mode = self.config.branch_predictor
        if mode == "perfect":
            return 0
        if mode == "static":
            return self.config.taken_branch_penalty if taken else 0
        # Bimodal 2-bit saturating counter, initialized weakly taken.
        counter = self.branch_counters.get(instruction.iid, 2)
        predicted_taken = counter >= 2
        if taken:
            self.branch_counters[instruction.iid] = min(3, counter + 1)
        else:
            self.branch_counters[instruction.iid] = max(0, counter - 1)
        if predicted_taken == taken:
            return 0
        self.mispredictions += 1
        return self.config.mispredict_penalty

    def ready_time(self, registers: Sequence[str]) -> float:
        ready = 0.0
        for register in registers:
            ready = max(ready, self.reg_ready.get(register, 0.0))
        return ready

    def find_issue_slot(self, earliest: float, port: str,
                        uses_sa: bool) -> int:
        t = int(max(earliest, self.min_issue))
        if earliest > t:
            t += 1
        self.last_port_delay = 0
        self.last_sa_delay = 0
        limit = self.config.port_limit(port)
        while True:
            if t > self.cycle:
                self.cycle = t
                self.issued_in_cycle = 0
                self.port_use.clear()
            if (self.issued_in_cycle < self.config.issue_width
                    and self.port_use[port] < limit):
                if uses_sa:
                    free = self.sa_ports.next_free(t)
                    if free != t:
                        self.sa_port_delays += 1
                        self.last_sa_delay += free - t
                        t = free
                        continue
                    self.sa_ports.book(t)
                self.issued_in_cycle += 1
                self.port_use[port] += 1
                self.min_issue = t
                self.issued_total += 1
                self.finish = max(self.finish, float(t + 1))
                return t
            self.last_port_delay += 1
            t += 1

    def complete(self, cycle: float) -> None:
        self.finish = max(self.finish, cycle)


class TimedResult:
    """Outcome of a timed multi-threaded (or single-threaded) run."""

    def __init__(self, cycles: float, core_finish: List[float],
                 per_thread_instructions: List[int],
                 per_thread_communication: List[int],
                 opcode_counts: Counter, live_outs: Dict[str, object],
                 memory: Memory, cache_stats: Dict[str, int],
                 queues: Optional[TimedQueues],
                 comm_stats: Optional[Dict[str, float]] = None):
        self.cycles = cycles
        self.core_finish = core_finish
        self.per_thread_instructions = per_thread_instructions
        self.per_thread_communication = per_thread_communication
        self.opcode_counts = opcode_counts
        self.live_outs = live_outs
        self.memory = memory
        self.cache_stats = cache_stats
        self.queues = queues
        self.comm_stats = comm_stats or {}

    @property
    def dynamic_instructions(self) -> int:
        return sum(self.per_thread_instructions)

    @property
    def communication_instructions(self) -> int:
        return sum(self.per_thread_communication)

    @property
    def computation_instructions(self) -> int:
        return self.dynamic_instructions - self.communication_instructions

    def __repr__(self) -> str:  # pragma: no cover
        return "<TimedResult %.0f cycles, %d instrs>" % (
            self.cycles, self.dynamic_instructions)


def _trace_operand_binding(core: CoreTiming, registers: Sequence[str],
                           min_issue_before: float,
                           use_fence: bool = False):
    """Trace-only: the raw dependence-delay component (categorized by
    what produced the binding operand) plus the register/memory
    dependence edges of an instruction's sources.  Pure reads — must be
    called *before* the instruction's own destination update."""
    raw: Dict[str, float] = {}
    deps: List[tuple] = []
    best_ready = 0.0
    best_kind = None
    for register in registers:
        ready = core.reg_ready.get(register, 0.0)
        source = core.reg_source.get(register)
        if source is not None and ready > 0.0:
            deps.append((source[0], "register", ready))
        if ready > best_ready:
            best_ready = ready
            best_kind = source[1] if source is not None else None
    if use_fence and core.mem_fence > best_ready:
        best_ready = core.mem_fence
        best_kind = "fence"
        if core.fence_event is not None:
            deps.append((core.fence_event, "memory", core.mem_fence))
    delay = best_ready - min_issue_before
    if delay > 0.0:
        category = ("sa_queue_empty" if best_kind == "fence"
                    else PRODUCER_CATEGORY.get(best_kind, "operand_wait"))
        raw[category] = delay
    return raw, deps


def _trace_emit(tracer, core: CoreTiming, thread: int, instruction,
                op_class: str, issue: int, complete: float,
                raw: Dict[str, float], deps: List[tuple],
                queue: Optional[int] = None,
                control_penalty: float = 0.0,
                extra: Optional[Dict[str, object]] = None) -> int:
    """Attach the common edges (in-order predecessor, pending control
    redirect, issue-slot conflicts) and emit one event."""
    if core.last_event_seq is not None:
        deps.append((core.last_event_seq, "order",
                     float(core.last_event_issue)))
    if core.pending_control_dep is not None:
        branch_seq, constraint = core.pending_control_dep
        deps.append((branch_seq, "control", constraint))
        core.pending_control_dep = None
    if core.last_port_delay:
        raw["port_conflict"] = float(core.last_port_delay)
    if core.last_sa_delay:
        raw["sa_port_contention"] = float(core.last_sa_delay)
    seq = tracer.on_event(
        core.core_id, thread, instruction.iid,
        instruction.op.name.lower(), op_class, issue, complete,
        stall=raw, deps=tuple(deps), queue=queue,
        control_penalty=control_penalty, extra=extra)
    core.last_event_seq = seq
    core.last_event_issue = issue
    return seq


def simulate_threads(functions: Sequence[Function], exit_thread: int,
                     memory_owner: Function,
                     args: Optional[Mapping[str, object]] = None,
                     initial_memory: Optional[Mapping[str, object]] = None,
                     config: MachineConfig = DEFAULT_CONFIG,
                     n_queues: int = 0,
                     max_steps: int = 200_000_000,
                     tracer=None,
                     placement: Optional[Sequence[int]] = None,
                     queue_crossing: Optional[Sequence[int]] = None
                     ) -> TimedResult:
    """Co-simulate ``functions`` (one per thread) functionally + in time.

    ``placement`` maps thread index to core id of the machine's
    topology (identity when omitted); each core arbitrates for its own
    cluster's synchronization-array ports, and ``queue_crossing`` adds
    the per-queue inter-cluster latency for channels whose placed
    endpoints sit in different clusters (zeros on any flat machine).

    ``tracer`` (a :class:`repro.trace.TraceCollector`, or anything with
    its ``on_event`` / ``on_queue_depth`` / ``on_finish`` hooks) turns
    on per-instruction event capture with stall breakdowns and
    dependence edges.  All instrumentation is guarded: with
    ``tracer=None`` the simulated timings are bit-identical to an
    uninstrumented run.
    """
    memory = make_memory(memory_owner, initial_memory)
    queues = TimedQueues(n_queues, config.sa_queue_size) if n_queues else None
    hierarchy = MemoryHierarchy(config)
    topo = config.resolve_topology()
    sa_latency = topo.sa_access_latency
    cluster_ports = [SAPortSchedule(topo.sa_ports)
                     for _ in range(topo.n_clusters)]
    if placement is None:
        placement = tuple(range(len(functions)))
    if len(placement) < len(functions):
        raise ValueError("placement covers %d threads, program has %d"
                         % (len(placement), len(functions)))

    contexts: List[ThreadContext] = []
    cores: List[CoreTiming] = []
    for index, function in enumerate(functions):
        regs = bind_params(function, dict(args) if args else {})
        contexts.append(ThreadContext(function, regs, memory, queues))
        core_id = placement[index]
        if not 0 <= core_id < topo.n_cores:
            raise ValueError("thread %d placed on core %d outside "
                             "topology %r (%d cores)"
                             % (index, core_id, topo.name, topo.n_cores))
        cores.append(CoreTiming(core_id, config,
                                cluster_ports[topo.cluster_of(core_id)]))
    if tracer is not None and hasattr(tracer, "on_topology"):
        tracer.on_topology(topo.cluster_map())

    n = len(contexts)
    per_thread_instructions = [0] * n
    per_thread_communication = [0] * n
    opcode_counts: Counter = Counter()
    live = [not c.exited for c in contexts]
    total_steps = 0

    while any(live):
        if any(len(schedule.booked) > SAPortSchedule.PRUNE_THRESHOLD
               for schedule in cluster_ports):
            watermark = min(cores[i].min_issue
                            for i in range(n) if live[i])
            for schedule in cluster_ports:
                schedule.prune(watermark)
        progressed = False
        for index, context in enumerate(contexts):
            if not live[index]:
                continue
            core = cores[index]
            # Budget: run a burst of instructions per thread per visit to
            # amortize loop overhead while keeping queues causal.
            for _ in range(64):
                instruction = context.current_instruction()
                if instruction is None:
                    live[index] = False
                    break
                op = instruction.op
                uses_sa = instruction.is_communication()

                if op is Opcode.PRODUCE or op is Opcode.PRODUCE_SYNC:
                    if len(queues.queues[instruction.queue]) \
                            >= queues.capacity:
                        break  # functionally full: retry after consumers run
                    slot_free = queues.slot_free_time(instruction.queue)
                    min_issue_before = float(core.min_issue)
                    if op is Opcode.PRODUCE:
                        own_ready = core.ready_time(instruction.srcs)
                    else:
                        own_ready = core.last_mem_complete
                    raw: Dict[str, float] = {}
                    deps: List[tuple] = []
                    if tracer is not None:
                        if op is Opcode.PRODUCE:
                            raw, deps = _trace_operand_binding(
                                core, instruction.srcs, min_issue_before)
                        else:
                            delay = own_ready - min_issue_before
                            if delay > 0.0:
                                raw[PRODUCER_CATEGORY.get(
                                    core.last_mem_kind,
                                    "operand_wait")] = delay
                            if core.last_mem_event is not None:
                                deps.append((core.last_mem_event,
                                             "memory", own_ready))
                    own_ready = max(own_ready, min_issue_before)
                    if slot_free > own_ready:
                        core.backpressure_cycles += slot_free - own_ready
                        if tracer is not None:
                            raw["sa_queue_full"] = slot_free - own_ready
                            free_seq = queues.slot_free_seq(
                                instruction.queue)
                            if free_seq is not None:
                                deps.append((free_seq, "communication",
                                             slot_free))
                    earliest = max(slot_free, own_ready)
                    t = core.find_issue_slot(earliest, "memory", True)
                    queues.staged_push_time = float(t + 1)
                    if tracer is not None:
                        queues.staged_push_seq = _trace_emit(
                            tracer, core, index, instruction, "comm",
                            t, float(t + 1), raw, deps,
                            queue=instruction.queue)
                    result = context.step()
                    core.complete(t + 1)
                    if tracer is not None:
                        tracer.on_queue_depth(
                            instruction.queue, float(t + 1),
                            len(queues.queues[instruction.queue]))
                elif op is Opcode.CONSUME or op is Opcode.CONSUME_SYNC:
                    result = context.step()
                    if result.status is StepStatus.BLOCKED:
                        break
                    t = core.find_issue_slot(0.0, "memory", True)
                    data_ready = queues.last_popped_time + sa_latency
                    if queue_crossing is not None:
                        data_ready += queue_crossing[instruction.queue]
                    if data_ready > t + 1:
                        core.operand_wait_cycles += data_ready - (t + 1)
                    available = max(float(t + 1), data_ready)
                    if op is Opcode.CONSUME:
                        core.reg_ready[instruction.dest] = available
                    else:
                        core.mem_fence = max(core.mem_fence, available)
                    seq = None
                    if tracer is not None:
                        raw = {}
                        deps = []
                        lateness = data_ready - (t + 1)
                        if lateness > 0.0:
                            raw["sa_queue_empty"] = lateness
                        if queues.last_popped_seq is not None:
                            deps.append((queues.last_popped_seq,
                                         "communication", data_ready))
                        seq = _trace_emit(
                            tracer, core, index, instruction, "comm",
                            t, available, raw, deps,
                            queue=instruction.queue)
                        if op is Opcode.CONSUME:
                            core.reg_source[instruction.dest] = (
                                seq, "consume")
                        else:
                            core.fence_event = seq
                        tracer.on_queue_depth(
                            instruction.queue, float(t + 1),
                            len(queues.queues[instruction.queue]))
                    queues.record_pop_completion(instruction.queue,
                                                 available, seq)
                    core.complete(available)
                else:
                    result = context.step()
                    if result.status is StepStatus.BLOCKED:  # pragma: no cover
                        break
                    _time_plain_instruction(core, hierarchy, config,
                                            instruction, result,
                                            tracer, index)

                progressed = True
                total_steps += 1
                if total_steps > max_steps:
                    raise MTExecutionLimitExceeded(
                        "%s exceeded %d steps"
                        % (memory_owner.name, max_steps))
                per_thread_instructions[index] += 1
                opcode_counts[op] += 1
                if uses_sa:
                    per_thread_communication[index] += 1
                if result.status is StepStatus.EXITED:
                    live[index] = False
                    break
        if not progressed and any(live):
            blocked = [contexts[i].current_instruction()
                       for i in range(n) if live[i]]
            raise DeadlockError("all live threads blocked: %s" % blocked)

    live_outs = {register: contexts[exit_thread].regs.get(register)
                 for register in memory_owner.live_outs}
    # Indexed by *core id* (idle cores report 0.0), so stall attribution
    # and per-core reporting stay exact under any placement.  With the
    # identity placement on a machine sized to the thread count — every
    # legacy call path — this is the per-thread list it always was.
    core_finish = [0.0] * max(len(cores), max(placement[:n],
                                              default=-1) + 1)
    for core in cores:
        core_finish[core.core_id] = core.finish
    comm_stats = {
        "backpressure_cycles": sum(c.backpressure_cycles for c in cores),
        "operand_wait_cycles": sum(c.operand_wait_cycles for c in cores),
        "sa_port_delays": sum(c.sa_port_delays for c in cores),
        "mispredictions": sum(c.mispredictions for c in cores),
    }
    if tracer is not None:
        tracer.on_finish(core_finish, hierarchy.stats(), comm_stats)
    return TimedResult(max(core_finish) if core_finish else 0.0,
                       core_finish, per_thread_instructions,
                       per_thread_communication, opcode_counts, live_outs,
                       memory, hierarchy.stats(), queues, comm_stats)


def _time_plain_instruction(core: CoreTiming, hierarchy: MemoryHierarchy,
                            config: MachineConfig, instruction,
                            result, tracer=None, thread: int = 0) -> None:
    kind = instruction.kind
    min_issue_before = float(core.min_issue)
    if kind is OpKind.LOAD:
        earliest = max(core.ready_time(instruction.srcs), core.mem_fence)
        t = core.find_issue_slot(earliest, "memory", False)
        latency = hierarchy.access(core.core_id, result.mem_address, False)
        if tracer is not None:
            raw, deps = _trace_operand_binding(
                core, instruction.srcs, min_issue_before, use_fence=True)
            level = hierarchy.last_level
            seq = _trace_emit(tracer, core, thread, instruction, "memory",
                              t, t + latency, raw, deps,
                              extra={"cache_level": level})
            core.reg_source[instruction.dest] = (seq, "load_" + level)
            if t + latency >= core.last_mem_complete:
                core.last_mem_event = seq
                core.last_mem_kind = "load_" + level
        core.reg_ready[instruction.dest] = t + latency
        core.last_mem_complete = max(core.last_mem_complete, t + latency)
        core.complete(t + latency)
    elif kind is OpKind.STORE:
        earliest = max(core.ready_time(instruction.srcs), core.mem_fence)
        t = core.find_issue_slot(earliest, "memory", False)
        hierarchy.access(core.core_id, result.mem_address, True)
        if tracer is not None:
            raw, deps = _trace_operand_binding(
                core, instruction.srcs, min_issue_before, use_fence=True)
            seq = _trace_emit(tracer, core, thread, instruction, "memory",
                              t, float(t + 1), raw, deps)
            if t + 1 >= core.last_mem_complete:
                core.last_mem_event = seq
                core.last_mem_kind = "store"
        core.last_mem_complete = max(core.last_mem_complete, float(t + 1))
        core.complete(t + 1)
    elif kind is OpKind.BRANCH:
        t = core.find_issue_slot(core.ready_time(instruction.srcs),
                                 "branch", False)
        penalty = core.branch_redirect(instruction, result.branch_taken)
        if tracer is not None:
            raw, deps = _trace_operand_binding(
                core, instruction.srcs, min_issue_before)
            seq = _trace_emit(tracer, core, thread, instruction, "branch",
                              t, float(t + 1), raw, deps,
                              control_penalty=float(penalty))
            if penalty:
                core.pending_control_dep = (seq, float(t + 1 + penalty))
        if penalty:
            core.min_issue = t + 1 + penalty
        core.complete(t + 1)
    elif kind is OpKind.JUMP:
        t = core.find_issue_slot(0.0, "branch", False)
        if tracer is not None:
            _trace_emit(tracer, core, thread, instruction, "branch",
                        t, float(t + 1), {}, [])
        core.complete(t + 1)
    elif kind is OpKind.EXIT:
        t = core.find_issue_slot(core.ready_time(
            instruction.used_registers()), "branch", False)
        if tracer is not None:
            raw, deps = _trace_operand_binding(
                core, instruction.used_registers(), min_issue_before)
            _trace_emit(tracer, core, thread, instruction, "branch",
                        t, float(t + 1), raw, deps)
        core.complete(t + 1)
    elif kind is OpKind.NOP:
        t = core.find_issue_slot(0.0, "alu", False)
        if tracer is not None:
            _trace_emit(tracer, core, thread, instruction, "alu",
                        t, float(t + 1), {}, [])
        core.complete(t + 1)
    else:
        port = "fp" if kind is OpKind.FP else "alu"
        t = core.find_issue_slot(core.ready_time(instruction.srcs), port,
                                 False)
        latency = config.latency_of(instruction)
        if tracer is not None:
            raw, deps = _trace_operand_binding(
                core, instruction.srcs, min_issue_before)
            seq = _trace_emit(tracer, core, thread, instruction, port,
                              t, t + latency, raw, deps)
            if instruction.dest is not None:
                core.reg_source[instruction.dest] = (seq, "alu")
        if instruction.dest is not None:
            core.reg_ready[instruction.dest] = t + latency
        core.complete(t + latency)


def queue_crossing_penalties(program: MTProgram, config: MachineConfig,
                             placement: Optional[Sequence[int]] = None
                             ) -> Optional[List[int]]:
    """Per-physical-queue inter-cluster latency under ``placement``
    (identity by default): a channel whose placed producer and consumer
    cores sit in different clusters pays the topology's crossing penalty
    on every consume.  ``None`` on any flat machine — queue sharing only
    ever pairs channels of one (producer, consumer) thread pair, so the
    per-queue penalty is well defined."""
    topo = config.resolve_topology()
    if topo.n_clusters == 1 or not program.n_queues:
        return None
    if placement is None:
        placement = tuple(range(program.n_threads))
    penalties = [0] * program.n_queues
    for channel in program.channels:
        if channel.queue is None:
            continue
        crossing = topo.crossing(placement[channel.source_thread],
                                 placement[channel.target_thread])
        penalties[channel.queue] = max(penalties[channel.queue], crossing)
    return penalties


def simulate_program(program: MTProgram,
                     args: Optional[Mapping[str, object]] = None,
                     initial_memory: Optional[Mapping[str, object]] = None,
                     config: MachineConfig = DEFAULT_CONFIG,
                     max_steps: int = 200_000_000,
                     tracer=None,
                     placement=None) -> TimedResult:
    """Timed simulation of MTCG output.  ``placement`` (a
    :class:`~repro.machine.placement.Placement` or a raw thread->core
    sequence) selects the cores; identity on a machine sized to the
    thread count otherwise."""
    cores = getattr(placement, "cores", placement)
    if config.topology is None:
        config = config.with_cores(max(program.n_threads, 1))
    return simulate_threads(program.threads, program.exit_thread,
                            program.original, args, initial_memory, config,
                            n_queues=program.n_queues, max_steps=max_steps,
                            tracer=tracer, placement=cores,
                            queue_crossing=queue_crossing_penalties(
                                program, config, cores))


def simulate_single(function: Function,
                    args: Optional[Mapping[str, object]] = None,
                    initial_memory: Optional[Mapping[str, object]] = None,
                    config: MachineConfig = DEFAULT_CONFIG,
                    max_steps: int = 200_000_000,
                    tracer=None) -> TimedResult:
    """Timed simulation of the original single-threaded code on one core."""
    if config.topology is None:
        config = config.with_cores(1)
    return simulate_threads([function], 0, function, args, initial_memory,
                            config, n_queues=0, max_steps=max_steps,
                            tracer=tracer)
