"""Machine topology: clustered N-core CMPs with per-cluster
synchronization arrays.

The papers evaluate a flat dual-core CMP: every core reaches one shared
synchronization array at a uniform latency.  Scaling the machine model
beyond two cores (the ROADMAP's "N-core hierarchical CMPs" item) makes
that shape a special case of a :class:`Topology` — cores grouped into
*clusters*, each cluster owning a synchronization-array slice
(``sa_access_latency`` / ``sa_ports`` / ``sa_queues``) and an L3 cache
domain, with an ``inter_cluster_latency`` penalty charged whenever a
value crosses clusters.  Communication cost therefore depends on *where*
threads are placed, not just how many there are (cf. Thibault's
hierarchical-machine scheduling and Papp et al.'s "increasingly
realistic models" in PAPERS.md).

A single-cluster topology is exactly the papers' machine: one port
schedule, one L3, zero crossing penalties.  ``MachineConfig`` resolves a
missing ``topology`` field to such a flat topology built from its own
scalar SA parameters, which keeps every committed dual-core cycle count
bit-for-bit unchanged.

Named presets live in :data:`TOPOLOGIES`; ``paper-dual`` is the default
machine of the papers, the others scale it to 4 and 8 cores, flat and
clustered.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple


class TopologyError(ValueError):
    """The topology description is malformed."""


@dataclass(frozen=True)
class Topology:
    """A clustered CMP: ``clusters[i]`` is the tuple of core ids in
    cluster ``i``.  Every cluster owns one synchronization-array slice
    (``sa_ports`` per-cycle port budget, ``sa_queues`` physical queues,
    ``sa_access_latency`` cycles per access) and — unless ``shared_l3``
    — one L3 cache domain.  ``inter_cluster_latency`` is the extra
    producer-to-consumer latency when a value crosses clusters."""

    name: str
    clusters: Tuple[Tuple[int, ...], ...]
    sa_access_latency: int = 1
    sa_ports: int = 4
    sa_queues: int = 256
    inter_cluster_latency: int = 0
    shared_l3: bool = True

    # -- validation --------------------------------------------------------

    def validate(self) -> "Topology":
        if not self.clusters or any(not cluster
                                    for cluster in self.clusters):
            raise TopologyError("topology %r needs at least one core per "
                                "cluster" % (self.name,))
        cores = [core for cluster in self.clusters for core in cluster]
        if sorted(cores) != list(range(len(cores))):
            raise TopologyError(
                "topology %r must cover core ids 0..%d exactly once, got "
                "%s" % (self.name, len(cores) - 1, sorted(cores)))
        for field_name in ("sa_access_latency", "sa_ports", "sa_queues"):
            if getattr(self, field_name) < 1:
                raise TopologyError("topology %r: %s must be >= 1"
                                    % (self.name, field_name))
        if self.inter_cluster_latency < 0:
            raise TopologyError("topology %r: inter_cluster_latency must "
                                "be >= 0" % (self.name,))
        if len(self.clusters) == 1 and self.inter_cluster_latency:
            raise TopologyError(
                "topology %r: a single cluster cannot carry an "
                "inter-cluster penalty" % (self.name,))
        return self

    # -- structure queries -------------------------------------------------

    @property
    def n_cores(self) -> int:
        return sum(len(cluster) for cluster in self.clusters)

    @property
    def n_clusters(self) -> int:
        return len(self.clusters)

    def cluster_of(self, core: int) -> int:
        """Cluster index owning ``core``."""
        for index, cluster in enumerate(self.clusters):
            if core in cluster:
                return index
        raise TopologyError("core %d outside topology %r (%d cores)"
                            % (core, self.name, self.n_cores))

    def cluster_map(self) -> Dict[int, int]:
        """``{core id: cluster index}`` over every core."""
        return {core: index
                for index, cluster in enumerate(self.clusters)
                for core in cluster}

    def crossing(self, core_a: int, core_b: int) -> int:
        """Extra communication cycles between two placed cores: zero
        within a cluster, ``inter_cluster_latency`` across clusters."""
        if self.n_clusters == 1:
            return 0
        if self.cluster_of(core_a) == self.cluster_of(core_b):
            return 0
        return self.inter_cluster_latency

    def cache_domains(self) -> Tuple[Tuple[int, ...], ...]:
        """The L3 sharing domains: one global domain, or one per
        cluster."""
        if self.shared_l3:
            return (tuple(core for cluster in self.clusters
                          for core in cluster),)
        return self.clusters

    def summary(self) -> str:
        """One-line description for the machine-configuration table."""
        shape = " + ".join(str(len(cluster)) for cluster in self.clusters)
        parts = ["%s: %d core(s) in %d cluster(s) [%s]"
                 % (self.name, self.n_cores, self.n_clusters, shape)]
        if self.n_clusters > 1:
            parts.append("inter-cluster +%d cycles"
                         % self.inter_cluster_latency)
            parts.append("L3 %s" % ("shared" if self.shared_l3
                                    else "per cluster"))
        parts.append("SA/cluster: %d queues, %d ports, %d-cycle access"
                     % (self.sa_queues, self.sa_ports,
                        self.sa_access_latency))
        return "; ".join(parts)

    # -- constructors ------------------------------------------------------

    @classmethod
    def flat(cls, n_cores: int, sa_access_latency: int = 1,
             sa_ports: int = 4, sa_queues: int = 256,
             name: str = "flat") -> "Topology":
        """A single-cluster machine of ``n_cores`` cores — the papers'
        shape, generalized to any core count."""
        return cls(name=name,
                   clusters=(tuple(range(max(1, n_cores))),),
                   sa_access_latency=sa_access_latency,
                   sa_ports=sa_ports, sa_queues=sa_queues,
                   inter_cluster_latency=0, shared_l3=True).validate()

    @classmethod
    def clustered(cls, shape: Tuple[int, ...], name: str,
                  sa_access_latency: int = 1, sa_ports: int = 4,
                  sa_queues: int = 128, inter_cluster_latency: int = 4,
                  shared_l3: bool = False) -> "Topology":
        """Consecutive core ids grouped into clusters of the given
        sizes, e.g. ``shape=(2, 2)`` -> cores (0, 1) and (2, 3)."""
        clusters = []
        base = 0
        for size in shape:
            clusters.append(tuple(range(base, base + size)))
            base += size
        return cls(name=name, clusters=tuple(clusters),
                   sa_access_latency=sa_access_latency,
                   sa_ports=sa_ports, sa_queues=sa_queues,
                   inter_cluster_latency=inter_cluster_latency,
                   shared_l3=shared_l3).validate()


#: The named presets ``--topology`` / ``EvaluateRequest.topology``
#: accept.  ``paper-dual`` is the papers' machine (and the behavioural
#: default); the others scale it out, flat and clustered.
TOPOLOGIES: Dict[str, Topology] = {
    # The flat dual-core CMP of Figure 6(a): one shared SA, global L3.
    "paper-dual": Topology.flat(2, name="paper-dual"),
    # Four cores on one shared SA — the naive scale-out.
    "quad-flat": Topology.flat(4, name="quad-flat"),
    # Two dual-core clusters: private SA slice + L3 per cluster, 4-cycle
    # crossing penalty.
    "quad-2x2": Topology.clustered((2, 2), name="quad-2x2",
                                   sa_queues=128,
                                   inter_cluster_latency=4),
    # Eight cores as four dual-core clusters: the hierarchical CMP the
    # ROADMAP's scaling curves target.
    "octa-hier": Topology.clustered((2, 2, 2, 2), name="octa-hier",
                                    sa_queues=64,
                                    inter_cluster_latency=6),
}


def get_topology(name: str) -> Topology:
    try:
        return TOPOLOGIES[name]
    except KeyError:
        raise TopologyError("unknown topology %r (known: %s)"
                            % (name, ", ".join(sorted(TOPOLOGIES))))


def topology_names() -> Tuple[str, ...]:
    return tuple(sorted(TOPOLOGIES))
