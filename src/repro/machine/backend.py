"""Simulation backend registry.

Two backends implement the same timing-simulation contract:

``reference``
    The readable event-driven model in :mod:`repro.machine.timing`.
    Supports tracing; the semantics source of truth.

``fast``
    The batched-dispatch model in :mod:`repro.machine.fast_timing`.
    Bit-identical results (locked down by
    :mod:`repro.check.differential_backend` and
    ``tests/test_backend_equivalence.py``); delegates to the reference
    implementation when a tracer is attached.

Because results are bit-identical, the backend choice is an *execution*
concern, not a *request* concern: it is excluded from stage fingerprints
and from :meth:`repro.api.EvaluateRequest.request_key`, so both backends
share one artifact-cache namespace.
"""

from __future__ import annotations

from typing import Callable, Dict, Tuple

from . import fast_timing, timing

#: Valid values of the ``--backend`` flag / ``EvaluateRequest.backend``.
BACKENDS: Tuple[str, ...] = ("reference", "fast")

DEFAULT_BACKEND = "reference"

_SIMULATE_PROGRAM: Dict[str, Callable] = {
    "reference": timing.simulate_program,
    "fast": fast_timing.simulate_program_fast,
}

_SIMULATE_SINGLE: Dict[str, Callable] = {
    "reference": timing.simulate_single,
    "fast": fast_timing.simulate_single_fast,
}

_SIMULATE_THREADS: Dict[str, Callable] = {
    "reference": timing.simulate_threads,
    "fast": fast_timing.simulate_threads_fast,
}


def validate_backend(name: str) -> str:
    """Return ``name`` if it names a registered backend, else raise."""
    if name not in BACKENDS:
        raise ValueError("unknown backend %r (expected one of %s)"
                         % (name, ", ".join(BACKENDS)))
    return name


def simulate_program_fn(backend: str = DEFAULT_BACKEND) -> Callable:
    """The backend's :func:`simulate_program`-compatible entry point."""
    return _SIMULATE_PROGRAM[validate_backend(backend)]


def simulate_single_fn(backend: str = DEFAULT_BACKEND) -> Callable:
    """The backend's :func:`simulate_single`-compatible entry point."""
    return _SIMULATE_SINGLE[validate_backend(backend)]


def simulate_threads_fn(backend: str = DEFAULT_BACKEND) -> Callable:
    """The backend's :func:`simulate_threads`-compatible entry point."""
    return _SIMULATE_THREADS[validate_backend(backend)]
