"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``list`` — the benchmark registry (the papers' Figure 6(b));
* ``machine`` — the machine configuration (Figure 6(a));
* ``run`` — parallelize one workload and report speedup/communication;
  ``--source FILE.py`` compiles a program with the
  :mod:`repro.frontend` Python subset instead of naming a registry
  workload, and ``--ir FILE.ir`` evaluates textual IR directly (both
  also accepted by ``dump``/``sweep``/``trace``);
* ``dump`` — print the IR of a workload, or the generated thread CFGs;
* ``sweep`` — run every workload under one (or every) configuration and
  summarize; ``--jobs N`` fans cells across a process pool, and the
  persistent artifact cache makes repeat sweeps cheap;
* ``fuzz`` — the differential fuzzing loop of :mod:`repro.check`:
  random programs x {GREMIO, DSWP, random partitions} x {COCO on/off},
  every cell statically validated and differentially executed, failures
  shrunk and persisted to ``--corpus``; ``--frontend`` fuzzes the
  Python-to-IR frontend against CPython instead;
* ``bench`` — the machine-readable benchmark subsystem of
  :mod:`repro.bench`: run every registered spec (``--smoke`` or
  ``--full``), emit a schema-versioned ``BENCH_RESULTS.json``, and gate
  against a committed baseline (``--compare``) under per-metric
  tolerance bands; ``--update-baseline`` refreshes the baseline
  (mirroring the ``REPRO_REGEN_GOLDENS`` convention,
  ``REPRO_UPDATE_BASELINE=1`` works too);
* ``serve`` — the scheduling service of :mod:`repro.service`: a
  JSON-over-HTTP daemon with a bounded multiprocess worker pool,
  admission control (429 shedding), per-request timeouts with
  stale-artifact degradation, and ``/healthz`` + ``/metrics``;
* ``trace`` — the execution-tracing subsystem of :mod:`repro.trace`:
  simulate one workload with per-instruction event capture, write a
  Perfetto-loadable ``trace.json``, and report stall attribution and
  the dynamic critical path (``--report`` / ``--report-json``).

``python -m repro --sweep`` is shorthand for ``sweep --technique all``.
Evaluating commands accept ``--check`` to run the static MT validators
(channel balance, queue conflicts, register isolation, deadlock
freedom) over every generated program as a pipeline stage.

Shared flags are declared once on parent parsers so help text cannot
drift between subcommands: ``--timings``/``--no-cache`` (every
pipeline-driving command: run/dump/sweep/report/bench/dot/serve) and
``--jobs`` (sweep/bench).  The cache directory honours
``REPRO_CACHE_DIR`` (default ``~/.cache/repro``).

Everything here consumes the pipeline through the stable
:mod:`repro.api` facade only.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .api import (BACKENDS, DEFAULT_BACKEND, PLACERS, STRATEGIES,
                  TECHNIQUES, TOPOLOGIES, build_cells, configure_cache,
                  evaluate_matrix, evaluate_workload, get_cache,
                  get_topology, global_telemetry, normalize, parallelize,
                  reset_global_telemetry)
from .ir.printer import format_function
from .machine.config import config_table
from .report import table
from .stats import geomean
from .workloads import all_workloads, benchmark_table, get_workload


def _cache_parent() -> argparse.ArgumentParser:
    """``--timings``/``--no-cache``, declared once for every
    pipeline-driving subcommand (run/dump/sweep/report/bench/dot/serve)
    so the flags and their help text cannot drift."""
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument("--timings", action="store_true",
                        help="print the per-stage timing / cache table")
    parent.add_argument("--no-cache", action="store_true",
                        help="disable the persistent artifact cache")
    return parent


def _jobs_parent() -> argparse.ArgumentParser:
    """``--jobs``, declared once for the batch commands (sweep/bench)."""
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument("--jobs", type=int, default=1,
                        help="evaluate cells on N worker processes")
    return parent


def _program_parent() -> argparse.ArgumentParser:
    """``--source``/``--ir``, declared once for every command that can
    evaluate an inline program instead of a registry workload
    (run/dump/sweep/trace)."""
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument("--source", default=None, metavar="FILE.py",
                        help="compile FILE.py with the repro.frontend "
                             "Python subset and evaluate it instead of "
                             "a registry workload")
    parent.add_argument("--ir", default=None, metavar="FILE.ir",
                        help="parse FILE.ir (textual IR) and evaluate "
                             "it instead of a registry workload")
    return parent


def _backend_parent() -> argparse.ArgumentParser:
    """``--backend``, declared once for every simulating command
    (run/sweep/bench/trace/serve).  Backends are bit-identical (see
    docs/performance.md); the flag trades host wall time only."""
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument("--backend", default=DEFAULT_BACKEND,
                        choices=BACKENDS,
                        help="simulator implementation: the line-for-line "
                             "reference, or the batched-dispatch fast "
                             "backend (bit-identical results; "
                             "default: %(default)s)")
    return parent


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="GMT instruction scheduling (GREMIO/DSWP/MTCG/COCO) "
                    "on a dual-core CMP model")
    sub = parser.add_subparsers(dest="command", required=True)
    cache_parent = _cache_parent()
    jobs_parent = _jobs_parent()
    backend_parent = _backend_parent()
    program_parent = _program_parent()

    sub.add_parser("list", help="list the benchmark workloads")
    machine = sub.add_parser("machine",
                             help="print the machine configuration")
    machine.add_argument("--topology", default=None,
                         choices=sorted(TOPOLOGIES),
                         help="print the table for this topology preset "
                              "(default: the papers' flat dual-core)")

    run = sub.add_parser("run", help="parallelize one workload",
                         parents=[cache_parent, backend_parent,
                                  program_parent])
    _common_options(run)
    run.add_argument("workload", nargs="?", default=None,
                     help="workload name (see `list`); omit with "
                          "--source/--ir")

    dump = sub.add_parser("dump", help="print workload IR / thread CFGs",
                          parents=[cache_parent, program_parent])
    _common_options(dump)
    dump.add_argument("workload", nargs="?", default=None,
                      help="workload name (see `list`); omit with "
                           "--source/--ir")
    dump.add_argument("--threads-code", action="store_true",
                      help="print the generated per-thread CFGs")

    sweep = sub.add_parser("sweep", help="evaluate every workload",
                           parents=[cache_parent, jobs_parent,
                                    backend_parent, program_parent])
    _common_options(sweep)

    fuzz = sub.add_parser(
        "fuzz", help="differential fuzzing of the whole pipeline "
                     "(random programs x partitioners x COCO, validated "
                     "and differentially executed)")
    fuzz.add_argument("--seed", type=int, default=0)
    fuzz.add_argument("--iterations", type=int, default=None,
                      help="fuzzing iterations (default 100; 25 under "
                           "--smoke)")
    fuzz.add_argument("--corpus", default=None, metavar="DIR",
                      help="directory for minimized reproducers and the "
                           "JSON run report")
    fuzz.add_argument("--smoke", action="store_true",
                      help="small fixed-seed CI configuration "
                           "(seed 0, 25 iterations)")
    fuzz.add_argument("--max-threads", type=int, default=3)
    fuzz.add_argument("--depth", type=int, default=2,
                      help="program nesting depth of generated sketches")
    fuzz.add_argument("--frontend", action="store_true",
                      help="fuzz the Python-to-IR frontend instead: "
                           "render each sketch as Python source, compile "
                           "it, and differentially execute the emitted "
                           "IR against CPython")

    bench = sub.add_parser(
        "bench", help="run the machine-readable benchmark specs and "
                      "emit/compare BENCH_RESULTS.json",
        parents=[cache_parent, jobs_parent, backend_parent])
    mode = bench.add_mutually_exclusive_group()
    mode.add_argument("--smoke", action="store_true",
                      help="CI configuration: train inputs, truncated "
                           "benchmark lists (the default)")
    mode.add_argument("--full", action="store_true",
                      help="the papers' methodology: ref inputs, every "
                           "benchmark")
    bench.add_argument("--spec", action="append", default=None,
                       metavar="ID",
                       help="run only this spec (repeatable; default: "
                            "all)")
    bench.add_argument("--out", default="BENCH_RESULTS.json",
                       metavar="PATH",
                       help="where to write the results JSON "
                            "(default: %(default)s)")
    bench.add_argument("--compare", default=None, metavar="BASELINE",
                       help="diff the run against this baseline JSON; "
                            "exit 1 on any out-of-tolerance metric")
    bench.add_argument("--host-strict", action="store_true",
                       help="tighten wall-time tolerance bands for "
                            "--compare (quiet dedicated host; baseline "
                            "recorded on the same machine)")
    bench.add_argument("--baseline",
                       default="benchmarks/baselines/bench_baseline.json",
                       metavar="PATH",
                       help="baseline written by --update-baseline "
                            "(default: %(default)s)")
    bench.add_argument("--update-baseline", action="store_true",
                       help="write this run's results to --baseline "
                            "(REPRO_UPDATE_BASELINE=1 also enables)")
    bench.add_argument("--summary", default=None, metavar="FILE",
                       help="append the markdown regression table to "
                            "FILE (CI: $GITHUB_STEP_SUMMARY)")
    bench.add_argument("--list", action="store_true",
                       help="list the registered bench specs and exit")

    trace = sub.add_parser(
        "trace", help="trace one workload's MT simulation: emit a "
                      "Perfetto-loadable trace.json plus a stall-"
                      "attribution / critical-path report",
        parents=[cache_parent, backend_parent, program_parent])
    trace.add_argument("workload", nargs="?", default=None,
                       help="workload name (see `list`); omit with "
                            "--source/--ir")
    trace.add_argument("--partitioner", choices=TECHNIQUES,
                       default="gremio",
                       help="partitioning technique "
                            "(default: %(default)s)")
    trace.add_argument("--threads", type=int, default=2)
    trace.add_argument("--coco", action="store_true",
                       help="enable the COCO communication optimizer")
    trace.add_argument("--scale", default="ref",
                       choices=("train", "ref"))
    trace.add_argument("--out", default="trace.json",
                       help="Chrome Trace Format output path "
                            "(default: %(default)s)")
    trace.add_argument("--report", action="store_true",
                       help="print the markdown stall-attribution / "
                            "critical-path report")
    trace.add_argument("--report-json", default=None, metavar="PATH",
                       help="also write the full analysis as JSON")
    trace.add_argument("--limit", type=int, default=None,
                       help="event ring capacity (default 1,000,000; "
                            "older events are dropped, aggregates stay "
                            "exact)")
    trace.add_argument("--topology", default=None,
                       choices=sorted(TOPOLOGIES),
                       help="machine-topology preset (default: flat "
                            "cores sized to --threads)")
    trace.add_argument("--placer", default="identity", choices=PLACERS,
                       help="thread->core placement policy "
                            "(default: %(default)s)")

    report = sub.add_parser(
        "report", help="regenerate the EXPERIMENTS.md headline table "
                       "(all workloads x {GREMIO, DSWP} x {MTCG, +COCO})",
        parents=[cache_parent])
    report.add_argument("--threads", type=int, default=2)
    report.add_argument("--scale", default="ref",
                        choices=("train", "ref"))

    tune = sub.add_parser(
        "tune", help="search the partitioner/placement/machine knob "
                     "space for configurations beating the paper "
                     "defaults; emits schema-versioned JSON "
                     "leaderboards plus a markdown summary",
        parents=[cache_parent, jobs_parent, backend_parent])
    tune.set_defaults(backend="fast")
    tune.add_argument("--workloads", nargs="+", default=None,
                      metavar="NAME",
                      help="workloads to tune (default: all; see "
                           "`list`)")
    tune.add_argument("--strategy", default="greedy",
                      choices=STRATEGIES,
                      help="search strategy (default: %(default)s)")
    tune.add_argument("--budget", type=int, default=64,
                      help="candidate evaluations per workload "
                           "(default: %(default)s)")
    tune.add_argument("--seed", type=int, default=0,
                      help="search seed; equal seed + budget => "
                           "byte-identical leaderboards "
                           "(default: %(default)s)")
    tune.add_argument("--threads", type=int, default=2)
    tune.add_argument("--scale", default="train",
                      choices=("train", "ref"),
                      help="input scale candidates are scored on "
                           "(default: %(default)s)")
    tune.add_argument("--knob", action="append", default=None,
                      metavar="NAME", dest="knobs",
                      help="restrict the search to this knob "
                           "(repeatable; default: the full space)")
    tune.add_argument("--out", default=None, metavar="DIR",
                      help="write tune_result.json, per-workload "
                           "leaderboard_<w>.json, and tune_summary.md "
                           "into DIR")
    tune.add_argument("--top", type=int, default=10,
                      help="leaderboard entries kept per workload "
                           "(default: %(default)s)")
    tune.add_argument("--smoke", action="store_true",
                      help="small fixed CI configuration: adpcmdec+ks, "
                           "greedy, budget 24, train scale")

    serve = sub.add_parser(
        "serve", help="run the scheduling service: a JSON-over-HTTP "
                      "daemon with a bounded worker pool, admission "
                      "control, and /healthz + /metrics",
        parents=[cache_parent, backend_parent])
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default: %(default)s)")
    serve.add_argument("--port", type=int, default=8184,
                       help="bind port; 0 picks a free one "
                            "(default: %(default)s)")
    serve.add_argument("--workers", type=int, default=2,
                       help="evaluation worker processes; 0 = inline "
                            "threads (default: %(default)s)")
    serve.add_argument("--queue-limit", type=int, default=16,
                       help="admitted-request bound before 429 "
                            "shedding (default: %(default)s)")
    serve.add_argument("--request-timeout", type=float, default=30.0,
                       metavar="SECONDS",
                       help="per-request evaluation budget; on expiry "
                            "the worker is cancelled and a stale "
                            "cached artifact is served when available "
                            "(default: %(default)s)")
    serve.add_argument("--max-retries", type=int, default=2,
                       help="crashed-worker retry budget per request "
                            "(default: %(default)s)")
    serve.add_argument("--role", default="standalone",
                       choices=("standalone", "coordinator", "worker"),
                       help="cluster role: standalone daemon (default), "
                            "coordinator (shard requests across "
                            "registered worker nodes, serve the remote "
                            "artifact store and /dashboard), or worker "
                            "(register with --coordinator and serve "
                            "its shard)")
    serve.add_argument("--coordinator", default=None, metavar="URL",
                       help="coordinator base URL "
                            "(required with --role worker)")
    serve.add_argument("--node-id", default=None,
                       help="stable node identity for rendezvous "
                            "sharding (default: host:port)")
    serve.add_argument("--tenant-limit", type=int, default=0,
                       help="per-tenant in-flight/queue cap; 0 = the "
                            "global queue limit (default: %(default)s)")
    serve.add_argument("--heartbeat-interval", type=float, default=2.0,
                       metavar="SECONDS",
                       help="worker heartbeat / monitoring publish "
                            "period (default: %(default)s)")

    dot = sub.add_parser("dot", help="emit Graphviz dot for a workload",
                         parents=[cache_parent])
    _common_options(dot)
    dot.add_argument("workload")
    dot.add_argument("--what", default="cfg",
                     choices=("cfg", "pdg", "threads", "program"),
                     help="which graph to emit")
    return parser


def _common_options(sub: argparse.ArgumentParser) -> None:
    sub.add_argument("--technique", choices=TECHNIQUES + ("all",),
                     default="gremio",
                     help="partitioning technique ('all' sweeps every one)")
    sub.add_argument("--threads", type=int, default=2)
    sub.add_argument("--coco", action="store_true",
                     help="enable the COCO communication optimizer")
    sub.add_argument("--alias-mode", default="annotated",
                     choices=("annotated", "provenance", "none"))
    sub.add_argument("--scale", default="ref", choices=("train", "ref"))
    sub.add_argument("--schedule", default=None,
                     choices=("early", "late", "neutral"),
                     help="run the local instruction scheduler with this "
                          "produce/consume priority")
    sub.add_argument("--check", action="store_true",
                     help="run the static MT validators over every "
                          "generated program (the pipeline check stage)")
    sub.add_argument("--topology", default=None,
                     choices=sorted(TOPOLOGIES),
                     help="machine-topology preset (default: flat cores "
                          "sized to --threads, the papers' machine)")
    sub.add_argument("--placer", default="identity", choices=PLACERS,
                     help="thread->core placement policy "
                          "(default: %(default)s)")


def _apply_cache_options(args) -> None:
    if getattr(args, "no_cache", False):
        configure_cache(enabled=False)


def _resolve_workload(args):
    """The workload a run/dump/sweep/trace invocation targets: a
    registry name, or an inline program from ``--source``/``--ir``
    (materialized through :func:`repro.api.resolve_program`)."""
    from .api import ProgramSpec, RequestValidationError, resolve_program
    source = getattr(args, "source", None)
    ir = getattr(args, "ir", None)
    name = getattr(args, "workload", None)
    picked = [flag for flag, value in
              (("--source", source), ("--ir", ir), ("workload", name))
              if value]
    if len(picked) > 1:
        raise SystemExit("pick one program input: %s are mutually "
                         "exclusive" % " and ".join(picked))
    if not picked:
        raise SystemExit("missing program: name a workload (see `list`) "
                         "or pass --source FILE.py / --ir FILE.ir")
    if source or ir:
        path = source or ir
        try:
            with open(path, "r", encoding="utf-8") as handle:
                text = handle.read()
        except OSError as error:
            raise SystemExit("cannot read %s: %s" % (path, error))
        spec = (ProgramSpec.source(text) if source
                else ProgramSpec.inline_ir(text))
        try:
            return resolve_program(spec)
        except RequestValidationError as error:
            raise SystemExit("%s: %s" % (path, error))
    try:
        return get_workload(name)
    except KeyError as error:
        raise SystemExit(error.args[0])


def _print_telemetry() -> None:
    telemetry = global_telemetry()
    print()
    print(telemetry.timings_table())
    print()
    print(telemetry.counters_table())
    cache = get_cache()
    stats = cache.stats
    # Under --jobs the loads happen in worker processes, so the local
    # CacheStats stay at zero; the merged telemetry still carries them.
    hits = max(stats.hits, telemetry.cache_hits)
    misses = max(stats.misses, telemetry.cache_misses)
    print("artifact cache: %d hits, %d misses, %d invalidations, "
          "%d stores%s" % (
              hits, misses, stats.invalidations, stats.stores,
              " [disabled]" if not cache.enabled
              else " (%s)" % cache.directory))


def _run_one(args) -> int:
    workload = _resolve_workload(args)
    if args.technique == "all":
        raise SystemExit("run: pick one --technique (not 'all')")
    ev = evaluate_workload(workload, technique=args.technique,
                           n_threads=args.threads, coco=args.coco,
                           scale=args.scale, alias_mode=args.alias_mode,
                           local_schedule=args.schedule,
                           mt_check=args.check, topology=args.topology,
                           placer=args.placer, backend=args.backend)
    rows = [
        ("single-threaded cycles", "%.0f" % ev.st_result.cycles),
        ("multi-threaded cycles", "%.0f" % ev.mt_result.cycles),
        ("speedup", "%.3fx" % ev.speedup),
        ("dynamic instructions (MT)",
         str(ev.mt_result.dynamic_instructions)),
        ("communication instructions",
         str(ev.communication_instructions)),
        ("communication share",
         "%.1f%%" % (100 * ev.communication_fraction)),
        ("channels", str(len(ev.parallelization.program.channels))),
        ("verified vs single-threaded", "yes"),
    ]
    print(table(["metric", "value"], rows,
                title="%s / %s%s / %d threads"
                      % (workload.name, args.technique,
                         "+coco" if args.coco else "", args.threads)))
    if args.timings:
        _print_telemetry()
    return 0


def _dump(args) -> int:
    workload = _resolve_workload(args)
    function = workload.build()
    if not args.threads_code:
        print(format_function(function, show_iids=True))
        return 0
    normalize(function)
    train = workload.make_inputs("train")
    result = parallelize(function, technique=args.technique,
                         n_threads=args.threads, coco=args.coco,
                         profile_args=train.args,
                         profile_memory=train.memory,
                         alias_mode=args.alias_mode, normalized=True,
                         mt_check=args.check, topology=args.topology)
    for index, thread in enumerate(result.program.threads):
        print("; ===== thread %d =====" % index)
        print(format_function(thread))
        print()
    print("; channels:")
    for channel in result.program.channels:
        print(";   %r" % channel)
    return 0


def _trace(args) -> int:
    from .trace import (stall_report_json, stall_report_markdown,
                        write_chrome_trace)
    workload = _resolve_workload(args)
    ev = evaluate_workload(workload, technique=args.partitioner,
                           n_threads=args.threads, coco=args.coco,
                           scale=args.scale, trace=True,
                           trace_limit=args.limit,
                           topology=args.topology, placer=args.placer,
                           backend=args.backend)
    analysis = ev.trace
    write_chrome_trace(args.out, analysis.collector)
    print("wrote %s (%d events, %d dropped; %.0f simulated cycles)"
          % (args.out, analysis.events_recorded,
             analysis.events_dropped, analysis.total_cycles))
    print("critical path: %.0f cycles over %d instructions; "
          "top stall: %s (%.0f cycles)"
          % (analysis.critical_path.length,
             analysis.critical_path.instructions,
             analysis.top_stall_reason, analysis.top_stall_cycles))
    if args.report_json:
        with open(args.report_json, "w") as handle:
            handle.write(stall_report_json(analysis))
            handle.write("\n")
        print("wrote %s" % args.report_json)
    if args.report:
        print()
        print(stall_report_markdown(analysis))
    if args.timings:
        _print_telemetry()
    return 0


def _sweep(args) -> int:
    techniques = (list(TECHNIQUES) if args.technique == "all"
                  else [args.technique])
    if getattr(args, "source", None) or getattr(args, "ir", None):
        workloads = [_resolve_workload(args)]
    else:
        workloads = all_workloads()
    cells = build_cells(workloads=workloads, techniques=techniques,
                        coco=(args.coco,), n_threads=(args.threads,),
                        scale=args.scale, alias_mode=args.alias_mode,
                        local_schedule=args.schedule,
                        mt_check=args.check, topology=args.topology,
                        placer=args.placer, backend=args.backend)
    evaluations = evaluate_matrix(cells, jobs=args.jobs)
    rows = []
    speedups = {technique: [] for technique in techniques}
    for ev in evaluations:
        rows.append((ev.workload.name, ev.technique, "%.3f" % ev.speedup,
                     str(ev.communication_instructions),
                     "%.1f%%" % (100 * ev.communication_fraction)))
        speedups[ev.technique].append(ev.speedup)
    for technique in techniques:
        rows.append(("geomean", technique,
                     "%.3f" % geomean(speedups[technique]), "", ""))
    print(table(["workload", "technique", "speedup", "comm instrs",
                 "comm %"], rows,
                title="%s%s / %d threads / %s inputs / %d job%s"
                      % ("+".join(techniques),
                         "+coco" if args.coco else "",
                         args.threads, args.scale, args.jobs,
                         "s" if args.jobs != 1 else "")))
    _print_telemetry()
    return 0


def _report(args) -> int:
    """The EXPERIMENTS.md headline table, as Markdown."""
    print("| benchmark | GREMIO | GREMIO+COCO | DSWP | DSWP+COCO "
          "| relcomm G | relcomm D | comm% G | comm% D |")
    print("|---|---|---|---|---|---|---|---|---|")
    aggregates = {"g": [], "gc": [], "d": [], "dc": [],
                  "rg": [], "rd": []}
    for workload in all_workloads():
        cells = {}
        for technique, base_key, coco_key, rel_key in (
                ("gremio", "g", "gc", "rg"), ("dswp", "d", "dc", "rd")):
            base = evaluate_workload(workload, technique=technique,
                                     n_threads=args.threads,
                                     scale=args.scale)
            optimized = evaluate_workload(workload, technique=technique,
                                          coco=True,
                                          n_threads=args.threads,
                                          scale=args.scale)
            relative = (100.0 * optimized.communication_instructions
                        / base.communication_instructions
                        if base.communication_instructions else 100.0)
            cells[technique] = (base, optimized, relative)
            aggregates[base_key].append(base.speedup)
            aggregates[coco_key].append(optimized.speedup)
            aggregates[rel_key].append(relative)
        g_base, g_coco, g_rel = cells["gremio"]
        d_base, d_coco, d_rel = cells["dswp"]
        print("| %s | %.3f | %.3f | %.3f | %.3f | %.1f%% | %.1f%% "
              "| %.1f%% | %.1f%% |"
              % (workload.name, g_base.speedup, g_coco.speedup,
                 d_base.speedup, d_coco.speedup, g_rel, d_rel,
                 100 * g_base.communication_fraction,
                 100 * d_base.communication_fraction))
    print("| **geomean / avg** | **%.3f** | **%.3f** | **%.3f** "
          "| **%.3f** | **%.1f%%** | **%.1f%%** | | |"
          % (geomean(aggregates["g"]), geomean(aggregates["gc"]),
             geomean(aggregates["d"]), geomean(aggregates["dc"]),
             sum(aggregates["rg"]) / len(aggregates["rg"]),
             sum(aggregates["rd"]) / len(aggregates["rd"])))
    if args.timings:
        _print_telemetry()
    return 0


def _fuzz(args) -> int:
    from .check import run_fuzz
    iterations = args.iterations
    if iterations is None:
        iterations = 25 if args.smoke else 100
    seed = 0 if args.smoke else args.seed
    if args.frontend:
        return _fuzz_frontend(args, seed, iterations)
    report = run_fuzz(seed=seed, iterations=iterations,
                      corpus_dir=args.corpus,
                      max_threads=args.max_threads, depth=args.depth,
                      progress=print)
    print(report.summary())
    rows = [(name, str(value))
            for name, value in sorted(report.counters.items())]
    print(table(["counter", "total"], rows, title="fuzz counters"))
    if report.failures:
        print()
        for failure in report.failures:
            print("FAILURE iteration %d cell %s%s (%s): shrunk %d -> %d "
                  "statements"
                  % (failure.iteration, failure.cell,
                     "+coco" if failure.coco else "", failure.kind,
                     failure.original_size, failure.shrunk_size))
            print("  " + failure.detail.replace("\n", "\n  "))
        if args.corpus:
            print("reproducers written to %s" % args.corpus)
        return 1
    return 0


def _fuzz_frontend(args, seed: int, iterations: int) -> int:
    from .frontend import run_frontend_fuzz
    report = run_frontend_fuzz(seed=seed, iterations=iterations,
                               corpus_dir=args.corpus, depth=args.depth,
                               progress=print)
    print(report.summary())
    rows = [(name, str(value))
            for name, value in sorted(report.counters.items())]
    print(table(["counter", "total"], rows,
                title="frontend fuzz counters"))
    if report.failures:
        print()
        for failure in report.failures:
            print("FAILURE iteration %d (%s): shrunk %d -> %d statements"
                  % (failure.iteration, failure.kind,
                     failure.original_size, failure.shrunk_size))
            print("  " + failure.detail.replace("\n", "\n  "))
        if args.corpus:
            print("reproducers written to %s" % args.corpus)
        return 1
    return 0


def _bench(args) -> int:
    import os

    from .bench import (MODES, SchemaError, BenchResults, all_specs,
                        compare, run_bench)

    if args.list:
        rows = [(spec.id, spec.title, spec.source)
                for spec in all_specs()]
        print(table(["id", "title", "source"], rows,
                    title="registered bench specs"))
        return 0

    mode = MODES["full" if args.full else "smoke"]
    results = run_bench(mode, jobs=args.jobs, spec_ids=args.spec,
                        backend=args.backend,
                        progress=lambda line: print("bench: " + line))
    results.save(args.out)
    print("bench: %d specs, %d metrics -> %s (%.1fs, mode=%s)"
          % (len(results.specs), len(results.metric_items()), args.out,
             results.total_seconds, results.mode))
    if args.timings:
        _print_telemetry()

    if args.update_baseline or os.environ.get("REPRO_UPDATE_BASELINE"):
        os.makedirs(os.path.dirname(args.baseline) or ".",
                    exist_ok=True)
        results.save(args.baseline)
        print("bench: baseline updated -> %s" % args.baseline)
        return 0

    if args.compare is None:
        return 0
    try:
        baseline = BenchResults.load(args.compare)
        comparison = compare(baseline, results,
                             host_strict=args.host_strict)
    except FileNotFoundError:
        print("bench: no baseline at %s — generate one with "
              "`python -m repro bench --%s --update-baseline`"
              % (args.compare, mode.name))
        return 1
    except SchemaError as error:
        print("bench: cannot compare: %s" % error)
        return 1
    table_text = comparison.markdown_table()
    print()
    print(table_text)
    print()
    print(comparison.summary())
    if args.summary:
        with open(args.summary, "a", encoding="utf-8") as handle:
            handle.write("## Benchmark regression gate (%s)\n\n%s\n\n%s\n"
                         % (mode.name, table_text, comparison.summary()))
    return 0 if comparison.ok else 1


def _serve(args) -> int:
    from .service import ServiceConfig, ServiceDaemon
    config = ServiceConfig(host=args.host, port=args.port,
                           workers=args.workers,
                           queue_limit=args.queue_limit,
                           request_timeout=args.request_timeout,
                           max_retries=args.max_retries,
                           backend=args.backend,
                           role=args.role,
                           coordinator_url=args.coordinator,
                           node_id=args.node_id,
                           tenant_limit=args.tenant_limit,
                           heartbeat_interval=args.heartbeat_interval)
    try:
        config.validate()
    except ValueError as error:
        print("repro serve: %s" % error, file=sys.stderr)
        return 2
    if config.role == "coordinator":
        from .cluster import CoordinatorDaemon
        node = CoordinatorDaemon(config)
        print("repro serve[coordinator]: listening on %s "
              "(queue_limit=%d, store=/store, dashboard=/dashboard)"
              % (node.address, config.queue_limit))
    elif config.role == "worker":
        from .cluster import WorkerNode
        node = WorkerNode(config)
        print("repro serve[worker %s]: listening on %s "
              "(coordinator=%s, workers=%d)"
              % (node.node_id, node.address, config.coordinator_url,
                 config.workers))
    else:
        node = ServiceDaemon(config)
        print("repro serve: listening on %s (workers=%d, "
              "queue_limit=%d, timeout=%.1fs)"
              % (node.address, config.workers, config.queue_limit,
                 config.request_timeout))
    sys.stdout.flush()
    try:
        node.serve_forever()
    except KeyboardInterrupt:
        node.close()
    if args.timings:
        _print_telemetry()
    return 0


def _dot(args) -> int:
    from .viz import (cfg_to_dot, pdg_to_dot, program_to_dot,
                      thread_graph_to_dot)
    workload = get_workload(args.workload)
    function = workload.build()
    if args.what == "cfg":
        print(cfg_to_dot(function))
        return 0
    normalize(function)
    train = workload.make_inputs("train")
    result = parallelize(function, technique=args.technique,
                         n_threads=args.threads, coco=args.coco,
                         profile_args=train.args,
                         profile_memory=train.memory,
                         alias_mode=args.alias_mode, normalized=True,
                         mt_check=args.check, topology=args.topology)
    if args.what == "pdg":
        print(pdg_to_dot(result.pdg, result.partition))
    elif args.what == "threads":
        print(thread_graph_to_dot(result.pdg, result.partition))
    else:
        print(program_to_dot(result.program))
    return 0


def _tune(args) -> int:
    # Imported here: the tune subsystem (and its leaderboard writer)
    # loads only when the subcommand actually runs.
    from .api import RequestValidationError, TuneRequest, tune
    from .tune.leaderboard import markdown_summary
    if args.smoke:
        workloads = ("adpcmdec", "ks")
        strategy, budget, scale = "greedy", 24, "train"
        knobs = ()
    else:
        if args.workloads:
            workloads = tuple(args.workloads)
        else:
            workloads = tuple(w.name for w in all_workloads())
        strategy, budget, scale = args.strategy, args.budget, args.scale
        knobs = tuple(args.knobs) if args.knobs else ()
    request = TuneRequest(workloads=workloads, strategy=strategy,
                          budget=budget, seed=args.seed,
                          n_threads=args.threads, scale=scale,
                          backend=args.backend, knobs=knobs)
    try:
        result = tune(request, jobs=args.jobs, out_dir=args.out,
                      top=args.top, progress=print)
    except RequestValidationError as error:
        raise SystemExit("tune: %s" % error)
    print()
    print(markdown_summary(result), end="")
    if args.timings:
        _print_telemetry()
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "--sweep":
        # `python -m repro --sweep` = sweep all workloads x techniques.
        argv[0:1] = ["sweep", "--technique", "all"]
    args = build_parser().parse_args(argv)
    _apply_cache_options(args)
    # Telemetry and cache stats are process-global accumulators; scope
    # the printed report to this command.
    reset_global_telemetry()
    get_cache().stats.reset()
    if args.command == "list":
        print(benchmark_table())
        return 0
    if args.command == "machine":
        if args.topology is not None:
            import dataclasses

            from .machine.config import DEFAULT_CONFIG
            preset = get_topology(args.topology)
            print(config_table(dataclasses.replace(
                DEFAULT_CONFIG, topology=preset,
                n_cores=preset.n_cores)))
        else:
            print(config_table())
        return 0
    if args.command == "run":
        return _run_one(args)
    if args.command == "dump":
        return _dump(args)
    if args.command == "sweep":
        return _sweep(args)
    if args.command == "trace":
        return _trace(args)
    if args.command == "fuzz":
        return _fuzz(args)
    if args.command == "bench":
        return _bench(args)
    if args.command == "tune":
        return _tune(args)
    if args.command == "serve":
        return _serve(args)
    if args.command == "dot":
        return _dot(args)
    if args.command == "report":
        return _report(args)
    return 2  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
