"""The companion paper's Figure 4, reproduced end to end.

Two sequential loops: the first computes ``r1``; the second only uses its
final value.  With the first loop on thread 0 and the second on thread 1,
baseline MTCG communicates ``r1`` on *every* iteration of loop 1 (and drags
a replica of loop 1 into thread 1 to do so); COCO's min-cut placement
communicates it once, after the loop — and the replica disappears.

Run:  python examples/coco_walkthrough.py
"""

from repro.analysis import build_pdg
from repro.coco import optimize
from repro.interp import run_function
from repro.ir import FunctionBuilder, format_function
from repro.ir.transforms import renumber_iids, split_critical_edges
from repro.machine import run_mt_program
from repro.mtcg import generate
from repro.partition import partition_from_threads


def build_figure4():
    b = FunctionBuilder("figure4", params=["r_n", "r_m"],
                        live_outs=["r1", "r2"])
    b.label("B1")
    b.movi("r1", 0)
    b.movi("r_i", 0)
    b.jmp("B2")
    b.label("B2")                       # loop 1: produces r1
    b.add("r1", "r1", 3)
    b.add("r_i", "r_i", 1)
    b.cmplt("r_c1", "r_i", "r_n")
    b.br("r_c1", "B2", "B3")
    b.label("B3")
    b.movi("r2", 0)
    b.movi("r_j", 0)
    b.jmp("B4")
    b.label("B4")                       # loop 2: consumes r1
    b.add("r2", "r2", "r1")
    b.add("r_j", "r_j", 1)
    b.cmplt("r_c2", "r_j", "r_m")
    b.br("r_c2", "B4", "B5")
    b.label("B5")
    b.exit()
    return b.build()


def main() -> None:
    function = build_figure4()
    split_critical_edges(function)
    renumber_iids(function)

    block_of = function.block_of()
    loop1 = {label for label in block_of.values()
             if label.startswith(("B1", "B2"))}
    t0 = [i.iid for i in function.instructions()
          if block_of[i.iid] in loop1]
    t1 = [i.iid for i in function.instructions()
          if block_of[i.iid] not in loop1]
    partition = partition_from_threads(function, 2, [t0, t1])

    args = {"r_n": 10, "r_m": 4}
    st = run_function(function, args)
    pdg = build_pdg(function)

    baseline = generate(function, pdg, partition)
    base_run = run_mt_program(baseline, args)
    print("Baseline MTCG: %d dynamic communication instructions"
          % base_run.communication_instructions)
    print("  thread 1 replicates loop 1? %s"
          % ("yes" if baseline.threads[1].has_block("B2") else "no"))

    coco = optimize(function, pdg, partition, st.profile)
    optimized = generate(function, pdg, partition,
                         data_channels=coco.data_channels,
                         condition_covered=coco.condition_covered)
    coco_run = run_mt_program(optimized, args)
    print("With COCO:     %d dynamic communication instructions"
          % coco_run.communication_instructions)
    print("  thread 1 replicates loop 1? %s"
          % ("yes" if optimized.threads[1].has_block("B2") else "no"))
    print("  r1 channel placement: %s"
          % [c.points for c in optimized.channels if c.register == "r1"])

    assert coco_run.live_outs == st.live_outs == base_run.live_outs
    print()
    print("Thread 1 (consumer) after COCO:")
    print(format_function(optimized.threads[1]))


if __name__ == "__main__":
    main()
