"""Plugging a custom partitioner into the GMT framework.

The papers' Figure 2 point: the PDG + MTCG pair is a *framework* — any
strategy that assigns instructions to threads yields correct multi-threaded
code.  This example writes a deliberately simple partitioner (offload every
floating-point instruction to thread 1), runs it through MTCG, and checks
the result against the single-threaded interpreter on the gromacs kernel.

Run:  python examples/custom_partitioner.py
"""

from repro.analysis import build_pdg
from repro.graphs import condense
from repro.interp import run_function
from repro.ir import OpKind, Opcode, format_function
from repro.machine import simulate_program, simulate_single
from repro.mtcg import generate
from repro.partition import Partition, Partitioner
from repro.api import normalize
from repro.workloads import get_workload


class FloatOffloadPartitioner(Partitioner):
    """Thread 1 gets the FP work; thread 0 keeps integer/control/memory.

    Dependence cycles must not straddle the boundary arbitrarily, so the
    assignment is made per PDG strongly-connected component: a component
    goes to thread 1 iff the majority of its weight is floating point.
    """

    name = "float-offload"

    def partition(self, function, pdg, profile, n_threads):
        successors = pdg.successors_map()
        components, _, _ = condense(pdg.nodes, successors)
        by_iid = function.by_iid()
        assignment = {}
        for component in components:
            fp = sum(1 for iid in component
                     if by_iid[iid].kind is OpKind.FP)
            target = 1 if (n_threads > 1 and fp * 2 > len(component)) else 0
            for iid in component:
                assignment[iid] = target
        # The exit must live with the live-out consumers (thread 0 here).
        for instruction in function.instructions():
            if instruction.op is Opcode.EXIT:
                assignment[instruction.iid] = 0
        return Partition(function, n_threads, assignment)


def main() -> None:
    workload = get_workload("435.gromacs")
    function = normalize(workload.build())
    train = workload.make_inputs("train")
    ref = workload.make_inputs("ref")

    profile = run_function(function, train.args, train.memory).profile
    pdg = build_pdg(function)
    partition = FloatOffloadPartitioner().partition(function, pdg,
                                                    profile, 2)
    counts = partition.counts()
    print("Partition: thread 0 gets %d instructions, thread 1 gets %d"
          % (counts[0], counts[1]))

    program = generate(function, pdg, partition)
    print("MTCG inserted %d communication channels (%d queues)"
          % (len(program.channels), program.n_queues))

    st = simulate_single(function, ref.args, ref.memory)
    mt = simulate_program(program, ref.args, ref.memory)
    assert mt.live_outs == st.live_outs, "wrong results!"
    assert mt.memory.snapshot() == st.memory.snapshot(), "wrong memory!"
    print("Correct: MT run matches the single-threaded oracle.")
    print("Single-threaded: %.0f cycles; float-offload MT: %.0f cycles "
          "(speedup %.3fx)" % (st.cycles, mt.cycles, st.cycles / mt.cycles))
    print()
    print("First blocks of thread 1 (the FP thread):")
    text = format_function(program.threads[1])
    print("\n".join(text.splitlines()[:25]))
    print("    ...")


if __name__ == "__main__":
    main()
