"""The full back end, pass by pass.

Takes one kernel through the complete toolchain the papers describe:
classical optimizations -> GMT scheduling (DSWP) -> COCO -> local
instruction scheduling -> register allocation -> timed simulation,
printing what each stage did.

Run:  python examples/backend_passes.py
"""

from repro.analysis import build_pdg
from repro.coco import optimize as coco_optimize
from repro.interp import run_function
from repro.machine import simulate_program, simulate_single
from repro.mtcg import generate
from repro.opt import (CommPriority, allocate_registers, optimize_function,
                       schedule_function, schedule_program)
from repro.api import make_partitioner, normalize, technique_config
from repro.workloads import get_workload


def main() -> None:
    workload = get_workload("435.gromacs")
    function = workload.build()
    train = workload.make_inputs("train")
    ref = workload.make_inputs("ref")
    config = technique_config("dswp")

    print("== 1. classical optimizations")
    stats = optimize_function(function)
    print("   %s" % stats)

    normalize(function, optimize=False)
    profile = run_function(function, train.args, train.memory).profile
    pdg = build_pdg(function)
    print("== 2. PDG: %d nodes, %d arcs" % (len(pdg.nodes), len(pdg.arcs)))

    partition = make_partitioner("dswp", config).partition(
        function, pdg, profile, 2)
    print("== 3. DSWP partition: %s" % partition.counts())

    coco = coco_optimize(function, pdg, partition, profile)
    print("== 4. COCO: %d channels, static cost %.0f -> %.0f "
          "(%d iterations)" % (len(coco.data_channels), coco.default_cost,
                               coco.optimized_cost, coco.iterations))

    program = generate(function, pdg, partition,
                       data_channels=coco.data_channels,
                       condition_covered=coco.condition_covered,
                       queue_allocation="shared")
    print("== 5. MTCG: %d channels over %d physical queues"
          % (len(program.channels),
             len({c.queue for c in program.channels})))

    moved = schedule_program(program, config, CommPriority.LATE)
    moved += schedule_function(function, config, CommPriority.LATE)
    print("== 6. local scheduling: %d instructions moved" % moved)

    for index, thread in enumerate(program.threads):
        result = allocate_registers(thread, n_physical=32)
        print("== 7. regalloc thread %d: pressure %d -> 32 physical, "
              "%d spilled (%d loads, %d stores)"
              % (index, result.max_pressure_before, result.spill_count,
                 result.spill_loads, result.spill_stores))

    st = simulate_single(function, ref.args, ref.memory, config=config)
    mt = simulate_program(program, ref.args, ref.memory, config=config)
    assert mt.live_outs == st.live_outs
    print("== 8. timed simulation: ST %.0f cycles, MT %.0f cycles "
          "(speedup %.3fx)" % (st.cycles, mt.cycles,
                               st.cycles / mt.cycles))
    print("   comm stalls: %s" % mt.comm_stats)


if __name__ == "__main__":
    main()
