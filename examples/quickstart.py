"""Quickstart: parallelize one of the paper's benchmark functions with
GREMIO and DSWP, with and without COCO, and report what happened.

Run:  python examples/quickstart.py [workload-name]
"""

import sys

from repro import evaluate_workload, get_workload, workload_names
from repro.report import table


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "181.mcf"
    if name not in workload_names():
        raise SystemExit("unknown workload %r; choose from %s"
                         % (name, workload_names()))
    workload = get_workload(name)
    print("Workload: %s — %s (%s, %d%% of benchmark execution)"
          % (workload.name, workload.function_name, workload.suite,
             workload.exec_percent))
    print()

    rows = []
    for technique in ("gremio", "dswp"):
        for coco in (False, True):
            ev = evaluate_workload(workload, technique=technique,
                                   coco=coco, n_threads=2)
            label = technique + ("+coco" if coco else "")
            rows.append((
                label,
                "%.0f" % ev.st_result.cycles,
                "%.0f" % ev.mt_result.cycles,
                "%.3fx" % ev.speedup,
                "%d" % ev.communication_instructions,
                "%.1f%%" % (100 * ev.communication_fraction),
            ))
    print(table(
        ["configuration", "ST cycles", "MT cycles", "speedup",
         "comm instrs", "comm %"], rows,
        title="Dual-core CMP results (ref inputs, profile on train)"))
    print()
    print("Every configuration was verified against the single-threaded")
    print("interpreter: identical live-out registers and memory image.")


if __name__ == "__main__":
    main()
