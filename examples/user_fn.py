"""A user program in the repro.frontend Python subset.

Compile and parallelize it straight from the command line:

    python -m repro run --source examples/user_fn.py --technique gremio
    python -m repro dump --source examples/user_fn.py
    python -m repro trace --source examples/user_fn.py --report

The subset (see docs/frontend.md): int/float/bool scalar parameters,
flat arrays declared as "int[N]"/"float[N]" string annotations,
if/while/for-range control flow, arithmetic/comparison/boolean
operators, and the abs/min/max/int/float/bool/sqrt intrinsics.  CPython
running this very file is the reference oracle the compiled IR is
checked against.
"""


def energy(gain: int, signal: "int[32]", envelope: "int[32]"):
    total = 0
    peak = 0
    for i in range(32):
        sample = signal[i] * gain
        if sample < 0:
            sample = -sample
        envelope[i] = max(sample, peak - envelope[i])
        peak = max(peak, sample)
        total = total + envelope[i]
    return total, peak
