"""Exploring the machine model: how the operand network shapes GMT wins.

Sweeps the synchronization-array latency and the core count for a
DSWP-parallelized kernel and prints the resulting speedups — the kind of
design-space question the hardware side of the papers (synchronization
array, scalar operand networks) is about.

Run:  python examples/machine_exploration.py
"""

import dataclasses

from repro.analysis import build_pdg
from repro.interp import run_function
from repro.machine import DEFAULT_CONFIG, simulate_program, simulate_single
from repro.mtcg import generate
from repro.partition.dswp import DSWPPartitioner
from repro.api import normalize
from repro.report import table
from repro.workloads import get_workload


def main() -> None:
    workload = get_workload("181.mcf")
    ref = workload.make_inputs("ref")
    train = workload.make_inputs("train")

    rows = []
    for n_threads in (2, 3, 4):
        function = normalize(workload.build())
        profile = run_function(function, train.args, train.memory).profile
        pdg = build_pdg(function)
        config = DEFAULT_CONFIG.for_dswp().with_cores(n_threads)
        partition = DSWPPartitioner(config).partition(function, pdg,
                                                      profile, n_threads)
        program = generate(function, pdg, partition)
        st = simulate_single(function, ref.args, ref.memory, config=config)
        for latency in (1, 4, 16):
            swept = dataclasses.replace(config, sa_access_latency=latency)
            mt = simulate_program(program, ref.args, ref.memory,
                                  config=swept)
            assert mt.live_outs == st.live_outs
            rows.append((n_threads, latency, "%.0f" % mt.cycles,
                         "%.3fx" % (st.cycles / mt.cycles)))
    print(table(["threads", "SA latency", "MT cycles", "speedup"], rows,
                title="181.mcf refresh_potential under DSWP: operand "
                      "network design space"))
    print()
    print("Reading: low-latency scalar communication is what makes "
          "fine-grained")
    print("decoupled pipelining profitable — exactly the papers' premise.")


if __name__ == "__main__":
    main()
