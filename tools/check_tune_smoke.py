#!/usr/bin/env python
"""The CI ``tune-smoke`` determinism gate.

Usage: ``python tools/check_tune_smoke.py [--out-dir DIR] [--keep]``

Runs ``python -m repro tune --smoke --seed 0`` twice — the second time
with ``--jobs 2`` and a *fresh* artifact cache, so neither the memo nor
the process pool can mask a nondeterminism bug — then asserts:

* every leaderboard/summary artifact of the two runs is byte-identical
  (the ``repro tune`` determinism contract);
* for every smoke workload the best-found configuration's cycles are
  <= both seeded baselines (the search never loses to the defaults it
  contains);
* the leaderboard documents are schema-versioned and well-formed.

On failure the divergent artifacts are left in ``--out-dir`` for the
workflow to upload.
"""

from __future__ import annotations

import argparse
import filecmp
import json
import os
import shutil
import subprocess
import sys
import tempfile

SMOKE_WORKLOADS = ("adpcmdec", "ks")
ARTIFACTS = tuple(["tune_result.json", "tune_summary.md"]
                  + ["leaderboard_%s.json" % name
                     for name in SMOKE_WORKLOADS])


class TuneSmokeError(AssertionError):
    """One of the tune-smoke contract checks failed."""


def run_tune_cli(out_dir: str, cache_dir: str, jobs: int) -> None:
    """One ``repro tune --smoke --seed 0`` invocation writing into
    ``out_dir`` against an isolated artifact cache."""
    root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    env = dict(os.environ)
    env["REPRO_CACHE_DIR"] = cache_dir
    env["PYTHONPATH"] = os.pathsep.join(
        [os.path.join(root, "src")]
        + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else []))
    command = [sys.executable, "-m", "repro", "tune", "--smoke",
               "--seed", "0", "--jobs", str(jobs), "--out", out_dir]
    completed = subprocess.run(command, env=env, cwd=root,
                               stdout=subprocess.PIPE,
                               stderr=subprocess.STDOUT, text=True)
    if completed.returncode != 0:
        raise TuneSmokeError(
            "tune run failed (exit %d):\n%s"
            % (completed.returncode, completed.stdout))


def check_identical(dir_a: str, dir_b: str) -> None:
    for name in ARTIFACTS:
        path_a = os.path.join(dir_a, name)
        path_b = os.path.join(dir_b, name)
        for path in (path_a, path_b):
            if not os.path.exists(path):
                raise TuneSmokeError("missing artifact %s" % path)
        if not filecmp.cmp(path_a, path_b, shallow=False):
            raise TuneSmokeError(
                "nondeterministic tune output: %s differs between "
                "same-seed runs (see uploaded artifacts)" % name)


def check_leaderboard(out_dir: str) -> None:
    for name in SMOKE_WORKLOADS:
        path = os.path.join(out_dir, "leaderboard_%s.json" % name)
        with open(path) as handle:
            document = json.load(handle)
        schema = document.get("schema_version")
        if not isinstance(schema, str) or not schema.startswith(
                "repro.tune/"):
            raise TuneSmokeError("%s: bad schema_version %r"
                                 % (path, schema))
        entries = document.get("entries")
        if not entries:
            raise TuneSmokeError("%s: empty leaderboard" % path)
        best = document.get("best")
        if best is None:
            raise TuneSmokeError("%s: missing best entry" % path)
        cycles = best["metrics"]["mt_cycles"]
        baselines = best.get("baseline_mt_cycles", {})
        for label in ("gremio", "dswp"):
            if label not in baselines:
                raise TuneSmokeError(
                    "%s: baseline %r was not seeded into the search"
                    % (path, label))
            if cycles > baselines[label]:
                raise TuneSmokeError(
                    "%s: search lost to the %s baseline it contains "
                    "(%.0f > %.0f cycles)"
                    % (path, label, cycles, baselines[label]))
        ranks = [entry.get("rank") for entry in entries]
        if ranks != sorted(ranks) or ranks[0] != 0:
            raise TuneSmokeError("%s: leaderboard ranks are not "
                                 "0-based and ordered: %r"
                                 % (path, ranks))


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out-dir", default="tune-smoke",
                        help="where the two runs' artifacts land "
                             "(default: %(default)s)")
    parser.add_argument("--keep", action="store_true",
                        help="keep artifacts on success too")
    args = parser.parse_args(argv)

    out_root = os.path.abspath(args.out_dir)
    os.makedirs(out_root, exist_ok=True)
    run_a = os.path.join(out_root, "run1")
    run_b = os.path.join(out_root, "run2")
    caches = tempfile.mkdtemp(prefix="tune-smoke-cache-")
    try:
        print("tune-smoke: run 1 (jobs=1, fresh cache)")
        run_tune_cli(run_a, os.path.join(caches, "a"), jobs=1)
        print("tune-smoke: run 2 (jobs=2, fresh cache)")
        run_tune_cli(run_b, os.path.join(caches, "b"), jobs=2)
        check_identical(run_a, run_b)
        check_leaderboard(run_a)
    finally:
        shutil.rmtree(caches, ignore_errors=True)
    print("tune-smoke: %d artifacts byte-identical across same-seed "
          "runs; search never lost to a seeded baseline"
          % len(ARTIFACTS))
    if not args.keep:
        shutil.rmtree(out_root, ignore_errors=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())
