#!/usr/bin/env python
"""CI smoke check for the clustered machine model (the
``scaling-smoke`` job): one workload at 4 threads on the clustered
``quad-2x2`` preset must run end-to-end for both techniques with

* **exact stall reconciliation** — per core, execute + attributed
  stalls == finish cycles (``TraceCollector.verify()``);
* **a cluster-grouped Chrome trace** — one named track per core, the
  track names carrying the core's cluster, ordered cluster-first;
* **a sane affinity placer** — the ``affinity`` placement never takes
  more cycles than ``identity`` on the same cell.

Usage: PYTHONPATH=src python tools/check_scaling_smoke.py \
           [--workload ks] [--topology quad-2x2] [--n-threads 4] \
           [--out-dir DIR]
Exits nonzero (with a diagnostic) on any failed expectation.
"""

from __future__ import annotations

import argparse
import os
import sys
import tempfile

TECHNIQUES = ("gremio", "dswp")


def fail(message: str) -> "NoReturn":  # noqa: F821
    print("scaling-smoke: FAIL: %s" % message)
    sys.exit(1)


def check_chrome_document(path: str, technique: str, topology) -> None:
    import json

    with open(path) as handle:
        document = json.load(handle)
    names = {event["pid"]: event["args"]["name"]
             for event in document["traceEvents"]
             if event.get("name") == "process_name"}
    sort_index = {event["pid"]: event["args"]["sort_index"]
                  for event in document["traceEvents"]
                  if event.get("name") == "process_sort_index"}
    core_pids = sorted(pid for pid, name in names.items()
                       if name.startswith(("core ", "cluster ")))
    if len(core_pids) != topology.n_cores:
        fail("%s: %d core tracks, topology has %d cores"
             % (technique, len(core_pids), topology.n_cores))
    for pid in core_pids:
        expected = "cluster %d · core %d" % (topology.cluster_of(pid),
                                             pid)
        if names[pid] != expected:
            fail("%s: core %d track named %r, expected %r"
                 % (technique, pid, names[pid], expected))
    ordered = sorted(core_pids,
                     key=lambda pid: (topology.cluster_of(pid), pid))
    by_sort = sorted(core_pids, key=lambda pid: sort_index[pid])
    if by_sort != ordered:
        fail("%s: track sort order %r is not cluster-grouped %r"
             % (technique, by_sort, ordered))
    print("scaling-smoke: %s trace ok (%d cluster-grouped core tracks)"
          % (technique, len(core_pids)))


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workload", default="ks")
    parser.add_argument("--topology", default="quad-2x2")
    parser.add_argument("--n-threads", type=int, default=4)
    parser.add_argument("--out-dir", default=None,
                        help="directory for the emitted trace.json "
                             "files (default: a temp dir)")
    args = parser.parse_args()

    from repro.api import evaluate_workload, get_workload, get_topology
    from repro.trace import write_chrome_trace

    topology = get_topology(args.topology)
    if topology.n_clusters < 2:
        fail("topology %r is flat; the smoke needs a clustered preset"
             % args.topology)
    workload = get_workload(args.workload)
    out_dir = args.out_dir or tempfile.mkdtemp(prefix="scaling-smoke-")
    os.makedirs(out_dir, exist_ok=True)

    for technique in TECHNIQUES:
        cycles = {}
        for placer in ("identity", "affinity"):
            evaluation = evaluate_workload(
                workload, technique=technique, n_threads=args.n_threads,
                scale="train", topology=args.topology, placer=placer,
                trace=(placer == "identity"))
            cycles[placer] = evaluation.mt_result.cycles
            if placer != "identity":
                continue
            trace = evaluation.trace
            if trace is None:
                fail("%s: no trace attached" % technique)
            # Exact per-core stall reconciliation: execute + stalls ==
            # finish, on every core of the clustered machine.
            trace.collector.verify()
            if len(trace.collector.cores) != topology.n_cores:
                fail("%s: trace covers %d cores, topology has %d"
                     % (technique, len(trace.collector.cores),
                        topology.n_cores))
            path = os.path.join(out_dir, "%s-%s.trace.json"
                                % (args.workload, technique))
            write_chrome_trace(path, trace.collector)
            check_chrome_document(path, technique, topology)
            print("scaling-smoke: %s reconciled (%d cores, %.0f cycles)"
                  % (technique, len(trace.collector.cores),
                     evaluation.mt_result.cycles))
        if cycles["affinity"] > cycles["identity"]:
            fail("%s: affinity placer lost to identity (%.0f > %.0f)"
                 % (technique, cycles["affinity"], cycles["identity"]))
        print("scaling-smoke: %s placers ok (identity %.0f, affinity "
              "%.0f)" % (technique, cycles["identity"],
                         cycles["affinity"]))

    print("scaling-smoke: PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
