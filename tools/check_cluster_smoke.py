#!/usr/bin/env python
"""CI smoke check for ``repro serve --role coordinator/worker`` (the
``cluster-smoke`` job): boot a coordinator plus two worker-node
processes on localhost, push a deduplicated 8-cell sweep through the
cluster, and assert

* every cluster answer is **byte-identical** (telemetry aside) to an
  in-process ``evaluate_many`` baseline, including the recomputed
  request keys;
* routing matches the rendezvous-hash prediction exactly, and a
  repeated cell is memoized by the owning node;
* after replacing both workers with fresh ones (empty local caches),
  the second sweep is served through the coordinator's remote artifact
  store — remote hits and replications show up in the workers'
  ``/metrics`` and store reads in the coordinator's.

Usage: PYTHONPATH=src python tools/check_cluster_smoke.py [--work-dir D]
Exits nonzero (with a diagnostic) on any failed expectation.
"""

from __future__ import annotations

import argparse
import json
import os
import re
import shutil
import signal
import subprocess
import sys
import tempfile
import threading
import time
import urllib.error
import urllib.request

BOOT_TIMEOUT = 90.0

#: 8 distinct cells; CELLS[0] is re-posted afterwards to check cluster
#: memoization, so the sweep itself is deduplicated by request key.
#: The backend is pinned because the daemon fills its own default into
#: requests that omit one — the echoed request would differ from the
#: in-process baseline on that field alone (results never differ:
#: backends are bit-identical).
CELLS = [
    {"program": {"kind": "registry", "value": "ks"},
     "technique": "gremio", "n_threads": n, "scale": "train",
     "coco": coco, "backend": "fast"}
    for n in (1, 2, 3, 4) for coco in (False, True)
]

NODE_IDS = ("smoke-w0", "smoke-w1")


def fail(message: str) -> "NoReturn":  # noqa: F821
    print("cluster-smoke: FAIL: %s" % message)
    sys.exit(1)


class Proc:
    """One daemon subprocess with captured stdout lines."""

    def __init__(self, argv, env):
        self.process = subprocess.Popen(
            argv, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            text=True, env=env)
        self.lines: list = []
        self._reader = threading.Thread(
            target=lambda: self.lines.extend(
                iter(self.process.stdout.readline, "")),
            daemon=True)
        self._reader.start()

    def wait_for_port(self) -> int:
        pattern = re.compile(r"listening on http://[^:]+:(\d+)")
        deadline = time.time() + BOOT_TIMEOUT
        while time.time() < deadline:
            if self.process.poll() is not None:
                fail("daemon exited during startup (rc=%d): %s"
                     % (self.process.returncode, " | ".join(self.lines)))
            for line in list(self.lines):
                match = pattern.search(line)
                if match:
                    return int(match.group(1))
            time.sleep(0.1)
        fail("daemon never announced a port within %.0fs: %s"
             % (BOOT_TIMEOUT, " | ".join(self.lines)))

    def stop(self) -> None:
        if self.process.poll() is None:
            self.process.send_signal(signal.SIGINT)
            try:
                self.process.wait(10)
            except subprocess.TimeoutExpired:
                self.process.kill()
                self.process.wait(10)


def _daemon_env(cache_dir: str) -> dict:
    env = dict(os.environ)
    env.pop("REPRO_STORE_URL", None)
    env["REPRO_CACHE_DIR"] = cache_dir
    return env


def spawn_coordinator(work_dir: str) -> Proc:
    return Proc([sys.executable, "-m", "repro", "serve",
                 "--role", "coordinator", "--port", "0",
                 "--queue-limit", "8", "--heartbeat-interval", "0.5"],
                _daemon_env(os.path.join(work_dir, "coord-store")))


def spawn_worker(work_dir: str, coordinator: str, node_id: str,
                 generation: int) -> Proc:
    cache_dir = os.path.join(work_dir,
                             "%s-gen%d-cache" % (node_id, generation))
    return Proc([sys.executable, "-m", "repro", "serve",
                 "--role", "worker", "--coordinator", coordinator,
                 "--node-id", node_id, "--port", "0", "--workers", "0",
                 "--heartbeat-interval", "0.5"],
                _daemon_env(cache_dir))


def get(base: str, path: str):
    with urllib.request.urlopen(base + path, timeout=30) as reply:
        return reply.status, json.loads(reply.read().decode("utf-8"))


def post(base: str, body):
    request = urllib.request.Request(
        base + "/v1/evaluate", data=json.dumps(body).encode("utf-8"),
        headers={"Content-Type": "application/json"}, method="POST")
    try:
        with urllib.request.urlopen(request, timeout=180) as reply:
            return reply.status, json.loads(reply.read().decode("utf-8"))
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read().decode("utf-8"))


def wait_for_nodes(base: str, expected_urls: dict) -> None:
    """Block until every node id is registered at its expected URL and
    healthy (covers both first registration and worker replacement)."""
    deadline = time.time() + BOOT_TIMEOUT
    nodes: dict = {}
    while time.time() < deadline:
        try:
            _, document = get(base, "/cluster/nodes")
        except OSError:
            time.sleep(0.2)
            continue
        nodes = document.get("nodes", {})
        if all(nodes.get(node_id, {}).get("url") == url
               and nodes.get(node_id, {}).get("healthy")
               for node_id, url in expected_urls.items()):
            return
        time.sleep(0.2)
    fail("worker nodes never became healthy at %r (registry: %r)"
         % (expected_urls, nodes))


def canonical(document) -> bytes:
    """Everything but wall-clock telemetry, as stable bytes."""
    stripped = {k: v for k, v in document.items() if k != "telemetry"}
    return json.dumps(stripped, sort_keys=True).encode("utf-8")


def run_sweep(base: str) -> list:
    documents = []
    for cell in CELLS:
        status, document = post(base, cell)
        if status != 200:
            fail("cell %r answered %d: %r" % (cell, status, document))
        if document.get("stale") or document.get("memoized"):
            fail("first evaluation carried stale/memoized markers: %r"
                 % {k: document.get(k) for k in ("stale", "memoized")})
        documents.append(document)
    return documents


def main() -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument("--work-dir", default=None,
                        help="scratch directory (default: a tempdir)")
    args = parser.parse_args()
    work_dir = args.work_dir or tempfile.mkdtemp(prefix="cluster-smoke-")
    os.makedirs(work_dir, exist_ok=True)

    # In-process baseline with its own isolated local cache.
    from repro.api import EvaluateRequest, configure_cache, evaluate_many
    from repro.cluster import shard_node
    os.environ.pop("REPRO_STORE_URL", None)
    configure_cache(os.path.join(work_dir, "inprocess-cache"))
    requests = [EvaluateRequest.from_dict(dict(cell)) for cell in CELLS]
    keys = [request.request_key() for request in requests]
    if len(set(keys)) != len(CELLS):
        fail("sweep cells are not deduplicated: %d unique keys"
             % len(set(keys)))
    baseline = [result.as_dict() for result in evaluate_many(requests)]
    print("cluster-smoke: in-process baseline over %d cells" % len(CELLS))

    processes: list = []
    try:
        coordinator = spawn_coordinator(work_dir)
        processes.append(coordinator)
        base = "http://127.0.0.1:%d" % coordinator.wait_for_port()
        print("cluster-smoke: coordinator up on %s" % base)

        workers = {node_id: spawn_worker(work_dir, base, node_id, 1)
                   for node_id in NODE_IDS}
        processes.extend(workers.values())
        worker_urls = {node_id: "http://127.0.0.1:%d"
                       % worker.wait_for_port()
                       for node_id, worker in workers.items()}
        wait_for_nodes(base, worker_urls)
        print("cluster-smoke: %d worker nodes registered" % len(workers))

        # Sweep 1: byte-identical to the in-process baseline.
        first = run_sweep(base)
        for cell, key, expected, got in zip(CELLS, keys, baseline, first):
            if canonical(got) != canonical(expected):
                fail("cluster answer diverged from evaluate_many for "
                     "%r:\n  expected %s\n  got      %s"
                     % (cell, canonical(expected), canonical(got)))
            echoed = EvaluateRequest.from_dict(
                dict(got["request"])).request_key()
            if echoed != key:
                fail("request key changed through the cluster: %s != %s"
                     % (echoed, key))
        print("cluster-smoke: sweep 1 byte-identical to evaluate_many")

        # Routing matches the rendezvous prediction; memo on repeat.
        predicted: dict = {}
        for key in keys:
            owner = shard_node(key, list(NODE_IDS))
            predicted[owner] = predicted.get(owner, 0) + 1
        _, metrics = get(base, "/metrics")
        cluster = metrics["cluster"]
        if cluster["shard_distribution"] != predicted:
            fail("shard distribution %r != predicted %r"
                 % (cluster["shard_distribution"], predicted))
        status, repeat = post(base, CELLS[0])
        if status != 200 or repeat.get("memoized") is not True:
            fail("repeated cell was not memoized by its owner: %d %r"
                 % (status, {k: repeat.get(k)
                             for k in ("memoized", "stale")}))
        counters = cluster["counters"]
        for name, floor in (("routed_total", len(CELLS)),
                            ("store_puts", 1), ("events_received", 2)):
            if counters.get(name, 0) < floor:
                fail("coordinator counter %s=%r below %d"
                     % (name, counters.get(name), floor))
        print("cluster-smoke: shards %r, memo hit on repeat"
              % cluster["shard_distribution"])

        # Replace both workers: fresh processes, empty local caches.
        for worker in workers.values():
            worker.stop()
        workers = {node_id: spawn_worker(work_dir, base, node_id, 2)
                   for node_id in NODE_IDS}
        processes.extend(workers.values())
        worker_urls = {node_id: "http://127.0.0.1:%d"
                       % worker.wait_for_port()
                       for node_id, worker in workers.items()}
        wait_for_nodes(base, worker_urls)

        # Sweep 2: same bytes, now served through the remote store.
        second = run_sweep(base)
        for cell, expected, got in zip(CELLS, baseline, second):
            if canonical(got) != canonical(expected):
                fail("second-run answer diverged for %r" % (cell,))
        remote_hits = replications = 0
        for node_id, url in worker_urls.items():
            _, node_metrics = get(url, "/metrics")
            store = node_metrics.get("cache", {}).get("store", {})
            remote_hits += store.get("remote_hits", 0)
            replications += store.get("replications", 0)
        if remote_hits < 1 or replications < 1:
            fail("fresh workers never read through the remote store "
                 "(remote_hits=%d, replications=%d)"
                 % (remote_hits, replications))
        _, metrics = get(base, "/metrics")
        if metrics["cluster"]["counters"].get("store_gets", 0) < 1:
            fail("coordinator served no store reads: %r"
                 % metrics["cluster"]["counters"])
        print("cluster-smoke: PASS (sweep 2 served via remote store: "
              "remote_hits=%d, replications=%d, coordinator "
              "store_gets=%d)"
              % (remote_hits, replications,
                 metrics["cluster"]["counters"]["store_gets"]))
        return 0
    finally:
        for proc in processes:
            proc.stop()
        if args.work_dir is None:
            shutil.rmtree(work_dir, ignore_errors=True)


if __name__ == "__main__":
    sys.exit(main())
