#!/usr/bin/env python
"""Assert the cold/warm artifact-cache contract over two sweep outputs.

Usage: ``python tools/check_cache_smoke.py cold.txt warm.txt``

The CI ``cache-smoke`` job runs ``python -m repro --sweep`` twice
against one ``REPRO_CACHE_DIR`` and feeds both transcripts here; the
same checks also run as a unit test (``tests/test_cache_smoke_tool``)
over synthetic transcripts, so the contract cannot silently rot in the
workflow file:

* the cold sweep populates the cache (nonzero misses);
* the warm sweep is fully cached (nonzero hits, zero misses);
* both sweeps report bit-identical metric tables.
"""

from __future__ import annotations

import re
import sys
from typing import List, Tuple

_SUMMARY = re.compile(r"artifact cache: (\d+) hits, (\d+) misses")
_METRIC_ROW = re.compile(r"\S+\s+\S+\s+\d+\.\d{3}")


class CacheSmokeError(AssertionError):
    """One of the cold/warm cache-contract checks failed."""


def parse_summary(text: str, label: str = "sweep") -> Tuple[int, int]:
    """(hits, misses) from a sweep transcript's cache summary line."""
    match = _SUMMARY.search(text)
    if not match:
        raise CacheSmokeError("no artifact-cache summary in %s output"
                              % label)
    return int(match.group(1)), int(match.group(2))


def metric_rows(text: str) -> List[str]:
    """The sweep's per-workload metric rows (name, technique, speedup
    ...), the lines whose equality the warm run must preserve."""
    return [line for line in text.splitlines()
            if _METRIC_ROW.match(line)]


def check(cold_text: str, warm_text: str) -> None:
    """Raise :class:`CacheSmokeError` unless the cold/warm pair honours
    the cache contract."""
    _, cold_misses = parse_summary(cold_text, "cold")
    warm_hits, warm_misses = parse_summary(warm_text, "warm")
    if cold_misses == 0:
        raise CacheSmokeError("cold sweep should populate the cache")
    if warm_hits == 0:
        raise CacheSmokeError("warm sweep reported no cache hits")
    if warm_misses != 0:
        raise CacheSmokeError("warm sweep should be fully cached "
                              "(%d misses)" % warm_misses)
    if metric_rows(cold_text) != metric_rows(warm_text):
        raise CacheSmokeError(
            "cold and warm sweeps reported different metrics")


def main(argv: List[str]) -> int:
    if len(argv) != 2:
        print("usage: check_cache_smoke.py COLD.txt WARM.txt",
              file=sys.stderr)
        return 2
    with open(argv[0], "r", encoding="utf-8") as handle:
        cold_text = handle.read()
    with open(argv[1], "r", encoding="utf-8") as handle:
        warm_text = handle.read()
    try:
        check(cold_text, warm_text)
    except CacheSmokeError as error:
        print("cache-smoke FAILED: %s" % error, file=sys.stderr)
        return 1
    print("cache-smoke ok: warm sweep fully cached, metrics identical")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
