#!/usr/bin/env python
"""CI gate for the fast simulator backend (the ``backend-equivalence``
job): run the differential sweep of
:mod:`repro.check.differential_backend` — every workload x topology
preset x partitioner (plus single-threaded and traced runs) and N
seeded fuzz programs — on both backends and require **zero**
divergences.  Results must be bit-identical down to numeric types; any
difference fails the job and the full machine-readable divergence
report is written to ``--report`` for upload as a CI artifact.

Usage: PYTHONPATH=src python tools/check_backend_equivalence.py \
           [--fuzz-seeds 25] [--scale train] [--trace] \
           [--report backend_divergences.json]
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.check import run_differential


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--fuzz-seeds", type=int, default=25,
                        help="seeded random programs to compare "
                             "(default: %(default)s)")
    parser.add_argument("--scale", default="train",
                        choices=("train", "ref"),
                        help="workload input scale (default: "
                             "%(default)s; ref is the full-methodology "
                             "sweep)")
    parser.add_argument("--trace", action="store_true",
                        help="also compare traced runs (event streams "
                             "and stall tables)")
    parser.add_argument("--report", default="backend_divergences.json",
                        metavar="PATH",
                        help="where to write the JSON report "
                             "(default: %(default)s; always written — "
                             "CI uploads it on failure)")
    args = parser.parse_args()

    trace_modes = (False, True) if args.trace else (False,)
    report = run_differential(
        scale=args.scale, trace_modes=trace_modes,
        fuzz_seeds=range(args.fuzz_seeds),
        progress=lambda line: print("backend-equivalence: " + line))
    with open(args.report, "w", encoding="utf-8") as handle:
        json.dump(report.as_dict(), handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(report.summary())
    if not report.ok:
        for case in report.failures:
            print("backend-equivalence: FAIL %s" % case.label)
            for divergence in case.divergences[:10]:
                print("  " + divergence)
        print("backend-equivalence: divergence report -> %s"
              % args.report)
        return 1
    print("backend-equivalence: PASS (report -> %s)" % args.report)
    return 0


if __name__ == "__main__":
    sys.exit(main())
