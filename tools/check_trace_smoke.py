#!/usr/bin/env python
"""CI smoke check for ``python -m repro trace`` (the ``trace-smoke``
job): validate that an emitted ``trace.json`` is a well-formed Chrome
Trace Format document Perfetto can load — the JSON object format with a
``traceEvents`` list holding complete ("X"), metadata ("M"), and
counter ("C") events with the required keys — and that the embedded
summary reconciles with the event stream.

Usage: PYTHONPATH=src python tools/check_trace_smoke.py trace.json \
           [--expect-counters] [--report-json report.json]
Exits nonzero (with a diagnostic) on any failed expectation.
"""

from __future__ import annotations

import argparse
import json
import sys

#: Keys every event of a given phase must carry (Trace Event Format).
REQUIRED_KEYS = {
    "X": ("name", "ph", "ts", "dur", "pid", "tid"),
    "M": ("name", "ph", "pid", "args"),
    "C": ("name", "ph", "ts", "pid", "args"),
}


def fail(message: str) -> "NoReturn":  # noqa: F821
    print("trace-smoke: FAIL: %s" % message)
    sys.exit(1)


def check_trace(path: str, expect_counters: bool) -> None:
    try:
        with open(path) as handle:
            document = json.load(handle)
    except (OSError, ValueError) as error:
        fail("cannot load %s: %s" % (path, error))
    if not isinstance(document, dict):
        fail("top level must be a JSON object (the CTF object format), "
             "got %s" % type(document).__name__)
    events = document.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail("traceEvents must be a non-empty list")

    by_phase = {}
    for index, event in enumerate(events):
        if not isinstance(event, dict):
            fail("traceEvents[%d] is not an object" % index)
        phase = event.get("ph")
        by_phase.setdefault(phase, []).append(event)
        for key in REQUIRED_KEYS.get(phase, ()):
            if key not in event:
                fail("traceEvents[%d] (ph=%r) missing key %r"
                     % (index, phase, key))

    if not by_phase.get("X"):
        fail("no complete ('X') instruction events")
    if not by_phase.get("M"):
        fail("no metadata ('M') track-naming events")
    process_names = {event["pid"]: event["args"].get("name")
                     for event in by_phase["M"]
                     if event.get("name") == "process_name"}
    if not process_names:
        fail("no process_name metadata (core tracks would be unnamed)")
    core_pids = {event["pid"] for event in by_phase["X"]}
    unnamed = core_pids - set(process_names)
    if unnamed:
        fail("instruction events on unnamed pid(s): %s" % sorted(unnamed))
    for event in by_phase["X"]:
        if event["dur"] <= 0:
            fail("non-positive duration on %r" % (event,))
    if expect_counters:
        counters = by_phase.get("C", [])
        if not counters:
            fail("no counter ('C') SA-occupancy events (MT trace "
                 "expected them)")
        if not all("depth" in event["args"] for event in counters):
            fail("counter events must carry args.depth")

    other = document.get("otherData", {})
    recorded = other.get("events_recorded")
    if recorded is not None and recorded != len(by_phase["X"]):
        fail("otherData.events_recorded=%r but %d 'X' events present"
             % (recorded, len(by_phase["X"])))
    print("trace-smoke: %s ok (%d instruction events, %d counter "
          "samples, %d tracks)"
          % (path, len(by_phase["X"]), len(by_phase.get("C", [])),
             len(process_names)))


def check_report(path: str) -> None:
    try:
        with open(path) as handle:
            report = json.load(handle)
    except (OSError, ValueError) as error:
        fail("cannot load report %s: %s" % (path, error))
    for key in ("schema", "total_cycles", "critical_path_cycles",
                "top_stall_reason", "cores", "stall_totals"):
        if key not in report:
            fail("report %s missing key %r" % (path, key))
    if report["critical_path_cycles"] > report["total_cycles"]:
        fail("critical path (%r cycles) exceeds total (%r cycles)"
             % (report["critical_path_cycles"], report["total_cycles"]))
    print("trace-smoke: %s ok (%.0f cycles, top stall %s)"
          % (path, report["total_cycles"], report["top_stall_reason"]))


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("trace", help="trace.json path to validate")
    parser.add_argument("--expect-counters", action="store_true",
                        help="require SA queue-occupancy counter tracks")
    parser.add_argument("--report-json", default=None,
                        help="also validate a --report-json document")
    args = parser.parse_args()
    check_trace(args.trace, args.expect_counters)
    if args.report_json:
        check_report(args.report_json)
    print("trace-smoke: PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
