#!/usr/bin/env python
"""The CI ``frontend-smoke`` gate for the Python-to-IR frontend.

Usage: ``python tools/check_frontend_smoke.py [--corpus DIR]
[--fuzz-iterations N]``

Three checks, end to end through real entry points:

1. **compile+evaluate** — ``python -m repro run --source
   examples/user_fn.py --technique gremio`` must exit 0 and report a
   verified evaluation (the example exercises arrays, loops, branches,
   and intrinsics);
2. **oracle agreement** — the compiled example must produce exactly
   CPython's observables (returns and array contents) on seeded random
   inputs, via the in-process frontend API;
3. **differential fuzz** — a fixed-seed ``repro fuzz --frontend`` run
   (seed 0, >= 25 iterations) must finish with zero divergences;
   reproducers land in ``--corpus`` for the workflow to upload on
   failure.
"""

from __future__ import annotations

import argparse
import os
import random
import subprocess
import sys

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
EXAMPLE = os.path.join("examples", "user_fn.py")


class FrontendSmokeError(AssertionError):
    """One of the frontend-smoke contract checks failed."""


def _env() -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [os.path.join(ROOT, "src")]
        + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else []))
    return env


def check_cli_run() -> None:
    command = [sys.executable, "-m", "repro", "run", "--source", EXAMPLE,
               "--technique", "gremio"]
    completed = subprocess.run(command, env=_env(), cwd=ROOT,
                               stdout=subprocess.PIPE,
                               stderr=subprocess.STDOUT, text=True)
    if completed.returncode != 0:
        raise FrontendSmokeError(
            "repro run --source failed (exit %d):\n%s"
            % (completed.returncode, completed.stdout))
    if "verified vs single-threaded" not in completed.stdout:
        raise FrontendSmokeError(
            "run output is missing the verification row:\n"
            + completed.stdout)
    print("frontend-smoke: repro run --source %s OK" % EXAMPLE)


def check_oracle_agreement(trials: int = 20) -> None:
    sys.path.insert(0, os.path.join(ROOT, "src"))
    from repro.frontend import (compile_source, python_callable,
                                random_inputs)
    from repro.interp.interpreter import run_function

    with open(os.path.join(ROOT, EXAMPLE), "r", encoding="utf-8") as f:
        source = f.read()
    program = compile_source(source, filename=EXAMPLE)
    fn = python_callable(source)
    rng = random.Random(0)
    for trial in range(trials):
        args, arrays = random_inputs(program, rng)
        py_arrays = {k: list(v) for k, v in arrays.items()}
        ordered = [py_arrays[p.name] if p.kind == "array"
                   else args[p.name] for p in program.params]
        expected = fn(*ordered)
        run = run_function(program.function, dict(args),
                           initial_memory={k: list(v)
                                           for k, v in arrays.items()})
        observed = tuple(run.live_outs["__ret%d" % i]
                         for i in range(program.n_returns))
        if tuple(expected) != observed:
            raise FrontendSmokeError(
                "trial %d: CPython %r != IR %r"
                % (trial, expected, observed))
        for name in arrays:
            if py_arrays[name] != run.mem_object(name):
                raise FrontendSmokeError(
                    "trial %d: array %r diverged" % (trial, name))
    print("frontend-smoke: %d oracle-agreement trials OK" % trials)


def check_fuzz(iterations: int, corpus: str) -> None:
    command = [sys.executable, "-m", "repro", "fuzz", "--frontend",
               "--seed", "0", "--iterations", str(iterations)]
    if corpus:
        command += ["--corpus", corpus]
    completed = subprocess.run(command, env=_env(), cwd=ROOT,
                               stdout=subprocess.PIPE,
                               stderr=subprocess.STDOUT, text=True)
    if completed.returncode != 0:
        raise FrontendSmokeError(
            "frontend fuzz found divergences (exit %d):\n%s"
            % (completed.returncode, completed.stdout))
    print("frontend-smoke: %d-iteration differential fuzz OK"
          % iterations)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--corpus", default="",
                        help="fuzz reproducer directory (uploaded by CI "
                             "on failure)")
    parser.add_argument("--fuzz-iterations", type=int, default=25)
    args = parser.parse_args()
    if args.fuzz_iterations < 25:
        raise SystemExit("--fuzz-iterations must be >= 25 (the CI floor)")
    try:
        check_cli_run()
        check_oracle_agreement()
        check_fuzz(args.fuzz_iterations, args.corpus)
    except FrontendSmokeError as error:
        print("frontend-smoke: FAIL: %s" % error)
        return 1
    print("frontend-smoke: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
