#!/usr/bin/env python
"""CI smoke check for ``python -m repro serve`` (the ``serve-smoke``
job): boot the daemon on an ephemeral port, run one evaluation over
real HTTP, check memoization, liveness, and that the ``/metrics``
counters moved, then tear the daemon down.

Usage: PYTHONPATH=src python tools/check_serve_smoke.py
Exits nonzero (with a diagnostic) on any failed expectation.
"""

from __future__ import annotations

import json
import re
import signal
import subprocess
import sys
import threading
import time
import urllib.error
import urllib.request

BOOT_TIMEOUT = 60.0
REQUEST = {"program": {"kind": "registry", "value": "ks"},
           "technique": "gremio", "n_threads": 2, "scale": "train"}


def fail(message: str) -> "NoReturn":  # noqa: F821
    print("serve-smoke: FAIL: %s" % message)
    sys.exit(1)


def wait_for_port(process, lines) -> int:
    """Parse the bound port from the daemon's startup line."""
    pattern = re.compile(r"listening on http://[^:]+:(\d+)")
    deadline = time.time() + BOOT_TIMEOUT
    while time.time() < deadline:
        if process.poll() is not None:
            fail("daemon exited during startup (rc=%d): %s"
                 % (process.returncode, " | ".join(lines)))
        for line in list(lines):
            match = pattern.search(line)
            if match:
                return int(match.group(1))
        time.sleep(0.1)
    fail("daemon never announced a port within %.0fs: %s"
         % (BOOT_TIMEOUT, " | ".join(lines)))


def get(base: str, path: str):
    with urllib.request.urlopen(base + path, timeout=30) as reply:
        return reply.status, json.loads(reply.read().decode("utf-8"))


def post(base: str, body) -> "tuple":
    request = urllib.request.Request(
        base + "/v1/evaluate", data=json.dumps(body).encode("utf-8"),
        headers={"Content-Type": "application/json"}, method="POST")
    try:
        with urllib.request.urlopen(request, timeout=120) as reply:
            return reply.status, json.loads(reply.read().decode("utf-8"))
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read().decode("utf-8"))


def main() -> int:
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0",
         "--workers", "2"],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True)
    lines: list = []
    reader = threading.Thread(
        target=lambda: lines.extend(iter(process.stdout.readline, "")),
        daemon=True)
    reader.start()
    try:
        port = wait_for_port(process, lines)
        base = "http://127.0.0.1:%d" % port
        print("serve-smoke: daemon up on %s" % base)

        status, health = get(base, "/healthz")
        if status != 200 or health.get("status") != "ok":
            fail("/healthz unhealthy: %d %r" % (status, health))

        status, document = post(base, REQUEST)
        if status != 200:
            fail("evaluation answered %d: %r" % (status, document))
        speedup = document.get("metrics", {}).get("speedup", 0.0)
        if not speedup > 0.0:
            fail("evaluation produced no speedup metric: %r" % document)
        print("serve-smoke: evaluated %s -> speedup %.4f"
              % (REQUEST["program"]["value"], speedup))

        status, repeat = post(base, REQUEST)
        if status != 200 or repeat.get("memoized") is not True:
            fail("repeat request was not memoized: %d %r"
                 % (status, {k: repeat.get(k)
                             for k in ("memoized", "stale")}))

        status, metrics = get(base, "/metrics")
        if status != 200:
            fail("/metrics answered %d" % status)
        counters = metrics.get("counters", {})
        for name, floor in (("requests_total", 2), ("responses_ok", 2),
                            ("evaluations_completed", 1),
                            ("memo_hits", 1)):
            if counters.get(name, 0) < floor:
                fail("counter %s=%r below %d (counters: %r)"
                     % (name, counters.get(name), floor, counters))
        latency = metrics.get("request_latency", {})
        if latency.get("count", 0) < 1:
            fail("request_latency histogram is empty: %r" % latency)
        if not metrics.get("stages"):
            fail("per-stage telemetry missing from /metrics")
        print("serve-smoke: PASS (requests_total=%d, memo_hits=%d, "
              "latency_count=%d)" % (counters["requests_total"],
                                     counters["memo_hits"],
                                     latency["count"]))
        return 0
    finally:
        if process.poll() is None:
            process.send_signal(signal.SIGINT)
            try:
                process.wait(10)
            except subprocess.TimeoutExpired:
                process.kill()
                process.wait(10)


if __name__ == "__main__":
    sys.exit(main())
